"""Out-of-core ingestion of real-world graphs.

Every result so far runs on the synthetic stand-ins of
:mod:`repro.graph.datasets`; this module is the bridge to the graphs the
paper actually cites (twitter, kron, web crawls).  It provides three layers:

**Chunked parsers** for the standard interchange formats — whitespace
edge lists (including SNAP's ``# Nodes: N Edges: M`` headers) and
Matrix-Market coordinate files — with transparent gzip decompression.
Parsing is ``np.loadtxt``-free: lines are gathered in multi-megabyte blocks,
validated with a single compiled regex over the block (so a malformed line is
a loud :class:`~repro.graph.csr.GraphError`, never silent mis-pairing), and
converted to NumPy arrays in one vectorized pass per block.

**A binary-CSR on-disk cache** (:class:`CSRBinaryCache`) keyed by the content
digest of the source file plus the parse options, version-stamped like
``DiskMemo`` (:data:`CSR_CACHE_VERSION`) and torn-write-safe: entries are
built in a temporary directory and published with a single ``os.replace``, so
a crashed or concurrent writer can never expose a partial entry, and a
corrupt entry reads as a miss and is rebuilt.

**An out-of-core CSR builder** that never holds the edge list in memory:
pass A streams parsed chunks to a binary spill while accumulating degree
counts, pass B scatters each chunk into ``np.memmap``-backed adjacency
arrays with a counting-sort cursor, and pass C sorts each vertex's neighbour
run in bounded blocks.  The result is bit-identical to
:func:`repro.graph.builder.build_csr` on the same edges, so an
:class:`~repro.graph.csr.MmapCSRGraph` loaded from the cache replays through
the trace pipeline with exactly the CacheStats of the in-RAM path.

Dataset download/verify tooling (:func:`fetch_dataset`, :func:`verify_file`)
rounds the module out: known SNAP datasets, streaming sha256 checksums, and
a trust-on-first-use ``CHECKSUMS.sha256`` lockfile.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import re
import shutil
import tempfile
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.graph.csr import (
    INDEX_DTYPE,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
    CSRGraph,
    GraphError,
    MmapCSRGraph,
)

PathLike = Union[str, Path]

#: Version stamp of the binary-CSR cache layout.  Bump when the entry format
#: or the parse/build semantics change; old entries then read as misses.
CSR_CACHE_VERSION = 1

#: Environment variable naming the binary-CSR cache root.
GRAPH_CACHE_ENV_VAR = "REPRO_GRAPH_CACHE"

#: Fallback cache root relative to the working directory (mirrors the sweep
#: CLI's ``.repro-cache`` default).
DEFAULT_GRAPH_CACHE_DIR = ".repro-cache/graphs"

#: Edges per parsed chunk (the out-of-core builder's working-set unit).
DEFAULT_CHUNK_EDGES = 1 << 20

#: ``mmap="auto"`` ingests through the cache once the *source file* exceeds
#: this size; smaller graphs parse straight to RAM.
AUTO_MMAP_MIN_BYTES = 64 << 20

#: Characters starting a comment line in edge-list files.
COMMENT_CHARS = ("#", "%")

_NUMBER_RE = r"[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?"

#: SNAP-style header: ``# Nodes: 875713 Edges: 5105039``.
_SNAP_NODES_RE = re.compile(r"nodes[:=]\s*(\d+)", re.IGNORECASE)
#: repro's own header: ``# vertices=N edges=M``.
_VERTICES_RE = re.compile(r"vertices=(\d+)")


def _row_pattern(ncols: int) -> "re.Pattern[str]":
    """Compiled multiline pattern matching exactly one ``ncols``-token row."""
    row = rf"{_NUMBER_RE}(?:[ \t,]+{_NUMBER_RE}){{{ncols - 1}}}"
    return re.compile(rf"^[ \t]*{row}[ \t]*\r?$", re.MULTILINE)


# ---------------------------------------------------------------------------
# low-level file access
# ---------------------------------------------------------------------------


def _is_gzip(path: Path) -> bool:
    try:
        with open(path, "rb") as handle:
            return handle.read(2) == b"\x1f\x8b"
    except OSError as error:
        raise GraphError(f"cannot read {path}: {error}") from error


def open_text(path: PathLike):
    """Open a (possibly gzip-compressed) text file for reading.

    Compression is detected from the magic bytes, not the extension, so a
    mislabelled ``.txt`` that is really gzip still opens.
    """
    path = Path(path)
    if not path.exists():
        raise GraphError(f"no such graph file: {path}")
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8", errors="strict")
    return open(path, "r", encoding="utf-8", errors="strict")


def sha256_file(path: PathLike, block_bytes: int = 1 << 20) -> str:
    """Streaming sha256 of a file's raw bytes (compressed files hash as-is)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(block_bytes)
            if not block:
                return digest.hexdigest()
            digest.update(block)


#: stat-keyed digests so memo-key construction does not rehash per call.
_DIGEST_CACHE: Dict[Tuple[str, int, int], str] = {}


def file_digest(path: PathLike) -> str:
    """sha256 of a file, cached in-process by ``(realpath, size, mtime)``."""
    real = os.path.realpath(str(path))
    try:
        stat = os.stat(real)
    except OSError as error:
        raise GraphError(f"cannot stat graph file {path}: {error}") from error
    cache_key = (real, stat.st_size, stat.st_mtime_ns)
    digest = _DIGEST_CACHE.get(cache_key)
    if digest is None:
        digest = sha256_file(real)
        _DIGEST_CACHE[cache_key] = digest
    return digest


# ---------------------------------------------------------------------------
# chunked parsing
# ---------------------------------------------------------------------------


@dataclass
class EdgeChunk:
    """One parsed slice of an edge stream (parallel arrays)."""

    src: np.ndarray
    dst: np.ndarray
    weights: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.src.shape[0])


def _find_bad_line(lines, ncols: int, pattern) -> str:
    """Slow path after block validation fails: name the offending line."""
    for line in lines:
        if not pattern.match(line.strip()) or len(line.split()) != ncols:
            return line.strip()
    return lines[0].strip() if lines else "<empty>"


def _parse_block(lines, ncols: int, row_pattern, full_pattern, where: str):
    """Vectorized numeric parse of one block of data lines."""
    block = "".join(lines)
    if len(full_pattern.findall(block)) != len(lines):
        bad = _find_bad_line(lines, ncols, row_pattern)
        raise GraphError(f"malformed line in {where}: {bad!r} (expected {ncols} numeric columns)")
    values = np.array(block.split(), dtype=np.float64)
    return values.reshape(-1, ncols)


def _require_integer_ids(columns: np.ndarray, where: str) -> np.ndarray:
    ids = columns[:, :2]
    if not np.array_equal(ids, np.floor(ids)):
        raise GraphError(f"non-integer vertex IDs in {where}")
    if ids.size and ids.min() < 0:
        raise GraphError(f"negative vertex IDs in {where}")
    return ids.astype(VERTEX_DTYPE)


class EdgeListReader:
    """Chunked reader for whitespace edge lists (SNAP / ``save_edge_list``).

    Attributes populated while streaming:

    ``declared_vertices``
        Vertex count from a ``# vertices=N`` or SNAP ``# Nodes: N`` header,
        or ``None`` when the file declares nothing.
    ``weighted``
        Whether a third (weight) column is present — decided by the first
        data line and enforced for every later line.
    """

    format = "edgelist"

    def __init__(self, path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES) -> None:
        self.path = Path(path)
        self.chunk_edges = max(1, int(chunk_edges))
        self.declared_vertices: Optional[int] = None
        self.weighted = False
        self.ncols: Optional[int] = None

    def _scan_header_comment(self, line: str) -> None:
        match = _VERTICES_RE.search(line) or _SNAP_NODES_RE.search(line)
        if match and self.declared_vertices is None:
            self.declared_vertices = int(match.group(1))

    def chunks(self) -> Iterator[EdgeChunk]:
        """Yield :class:`EdgeChunk` objects of at most ``chunk_edges`` edges."""
        row_pattern = full_pattern = None
        where = str(self.path)
        # ~64 bytes/line keeps block size near the chunk budget.
        block_hint = self.chunk_edges * 64
        try:
            with open_text(self.path) as handle:
                while True:
                    raw = handle.readlines(block_hint)
                    if not raw:
                        return
                    data = []
                    for line in raw:
                        stripped = line.strip()
                        if not stripped:
                            continue
                        if stripped.startswith(COMMENT_CHARS):
                            self._scan_header_comment(stripped)
                            continue
                        data.append(line)
                    if not data:
                        continue
                    if self.ncols is None:
                        self.ncols = len(data[0].split())
                        if self.ncols not in (2, 3):
                            raise GraphError(
                                f"edge list {where} has {self.ncols} columns; "
                                "expected 'src dst' or 'src dst weight'"
                            )
                        self.weighted = self.ncols == 3
                        row_pattern = re.compile(
                            rf"{_NUMBER_RE}(?:[ \t,]+{_NUMBER_RE}){{{self.ncols - 1}}}\Z"
                        )
                        full_pattern = _row_pattern(self.ncols)
                    columns = _parse_block(data, self.ncols, row_pattern, full_pattern, where)
                    for start in range(0, columns.shape[0], self.chunk_edges):
                        part = columns[start : start + self.chunk_edges]
                        ids = _require_integer_ids(part, where)
                        weights = part[:, 2].astype(WEIGHT_DTYPE) if self.weighted else None
                        yield EdgeChunk(ids[:, 0], ids[:, 1], weights)
        except (EOFError, gzip.BadGzipFile) as error:
            raise GraphError(f"truncated or corrupt gzip stream in {where}: {error}") from error
        except UnicodeDecodeError as error:
            raise GraphError(f"{where} is not a text edge list: {error}") from error


class MatrixMarketReader:
    """Chunked reader for Matrix-Market ``coordinate`` files.

    Supports ``pattern`` / ``real`` / ``integer`` fields and ``general`` /
    ``symmetric`` symmetry (symmetric entries are mirrored, the diagonal
    once).  Indices are 1-based per the format and are rebased to 0.
    """

    format = "mtx"

    def __init__(self, path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES) -> None:
        self.path = Path(path)
        self.chunk_edges = max(1, int(chunk_edges))
        self.declared_vertices: Optional[int] = None
        self.declared_entries: Optional[int] = None
        self.weighted = False
        self.symmetric = False

    def _parse_header(self, line: str, where: str) -> None:
        tokens = line.strip().lower().split()
        if len(tokens) < 5 or tokens[0] != "%%matrixmarket":
            raise GraphError(f"{where} is not a Matrix-Market file (bad banner: {line.strip()!r})")
        _, obj, fmt, field_kind, symmetry = tokens[:5]
        if obj != "matrix" or fmt != "coordinate":
            raise GraphError(f"{where}: only 'matrix coordinate' files are supported")
        if field_kind not in ("pattern", "real", "integer"):
            raise GraphError(f"{where}: unsupported Matrix-Market field {field_kind!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphError(f"{where}: unsupported Matrix-Market symmetry {symmetry!r}")
        self.weighted = field_kind != "pattern"
        self.symmetric = symmetry == "symmetric"

    def chunks(self) -> Iterator[EdgeChunk]:
        where = str(self.path)
        ncols = None
        row_pattern = full_pattern = None
        seen = 0
        block_hint = self.chunk_edges * 64
        try:
            with open_text(self.path) as handle:
                banner = handle.readline()
                if not banner:
                    raise GraphError(f"{where} is empty")
                self._parse_header(banner, where)
                size_line = None
                while size_line is None:
                    line = handle.readline()
                    if not line:
                        raise GraphError(f"{where}: missing Matrix-Market size line")
                    stripped = line.strip()
                    if not stripped or stripped.startswith("%"):
                        continue
                    size_line = stripped
                parts = size_line.split()
                if len(parts) != 3:
                    raise GraphError(f"{where}: malformed size line {size_line!r}")
                try:
                    rows, cols, entries = (int(p) for p in parts)
                except ValueError as error:
                    raise GraphError(f"{where}: malformed size line {size_line!r}") from error
                if rows != cols:
                    raise GraphError(
                        f"{where}: adjacency matrix must be square, got {rows}x{cols}"
                    )
                self.declared_vertices = rows
                self.declared_entries = entries
                ncols = 3 if self.weighted else 2
                row_pattern = re.compile(
                    rf"{_NUMBER_RE}(?:[ \t,]+{_NUMBER_RE}){{{ncols - 1}}}\Z"
                )
                full_pattern = _row_pattern(ncols)
                while True:
                    raw = handle.readlines(block_hint)
                    if not raw:
                        break
                    data = [
                        line for line in raw
                        if line.strip() and not line.lstrip().startswith("%")
                    ]
                    if not data:
                        continue
                    columns = _parse_block(data, ncols, row_pattern, full_pattern, where)
                    seen += columns.shape[0]
                    if seen > entries:
                        raise GraphError(
                            f"{where}: more than the declared {entries} entries"
                        )
                    for start in range(0, columns.shape[0], self.chunk_edges):
                        part = columns[start : start + self.chunk_edges]
                        ids = _require_integer_ids(part, where)
                        if ids.size and (ids.min() < 1 or ids.max() > rows):
                            raise GraphError(
                                f"{where}: 1-based index out of range [1, {rows}]"
                            )
                        src = ids[:, 0] - 1
                        dst = ids[:, 1] - 1
                        weights = part[:, 2].astype(WEIGHT_DTYPE) if self.weighted else None
                        yield EdgeChunk(src, dst, weights)
                        if self.symmetric:
                            off = src != dst
                            if off.any():
                                mirrored_w = weights[off] if weights is not None else None
                                yield EdgeChunk(dst[off], src[off], mirrored_w)
        except (EOFError, gzip.BadGzipFile) as error:
            raise GraphError(f"truncated or corrupt gzip stream in {where}: {error}") from error
        except UnicodeDecodeError as error:
            raise GraphError(f"{where} is not a text Matrix-Market file: {error}") from error
        if seen != entries:
            raise GraphError(
                f"{where}: truncated Matrix-Market file — "
                f"declared {entries} entries, found {seen}"
            )


def detect_format(path: PathLike) -> str:
    """Sniff a file's graph format: ``"mtx"`` or ``"edgelist"``."""
    path = Path(path)
    suffixes = [s.lower() for s in path.suffixes]
    if ".mtx" in suffixes:
        return "mtx"
    try:
        with open_text(path) as handle:
            first = handle.readline()
    except (EOFError, gzip.BadGzipFile) as error:
        raise GraphError(f"truncated or corrupt gzip stream in {path}: {error}") from error
    except UnicodeDecodeError as error:
        raise GraphError(f"{path} is not a recognised text graph format: {error}") from error
    if first.lstrip().lower().startswith("%%matrixmarket"):
        return "mtx"
    return "edgelist"


def make_reader(path: PathLike, fmt: Optional[str] = None,
                chunk_edges: int = DEFAULT_CHUNK_EDGES):
    """Instantiate the chunked reader for a file (format sniffed if needed)."""
    fmt = fmt or detect_format(path)
    if fmt in ("edgelist", "snap", "el"):
        return EdgeListReader(path, chunk_edges=chunk_edges)
    if fmt == "mtx":
        return MatrixMarketReader(path, chunk_edges=chunk_edges)
    raise GraphError(f"unknown graph format {fmt!r}; expected 'edgelist', 'snap' or 'mtx'")


# ---------------------------------------------------------------------------
# parse options and in-RAM assembly
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParseOptions:
    """Options that change the parsed graph (and therefore the cache key)."""

    fmt: Optional[str] = None
    num_vertices: Optional[int] = None
    densify: bool = False
    remove_self_loops: bool = False

    def cache_key(self, digest: str) -> tuple:
        return (
            CSR_CACHE_VERSION, digest, self.fmt,
            self.num_vertices, self.densify, self.remove_self_loops,
        )


def _resolve_num_vertices(options: ParseOptions, reader, max_id: int) -> int:
    inferred = max_id + 1
    declared = options.num_vertices
    if declared is None:
        declared = reader.declared_vertices
    if declared is None:
        return inferred
    if declared < inferred:
        raise GraphError(
            f"{reader.path}: declared {declared} vertices but edges reference ID {max_id}"
        )
    return int(declared)


def parse_graph(path: PathLike, options: ParseOptions = ParseOptions(),
                name: Optional[str] = None,
                chunk_edges: int = DEFAULT_CHUNK_EDGES) -> CSRGraph:
    """Parse a graph file fully into RAM (the small-graph path).

    The result is produced by the same parser as the out-of-core path and
    assembled with :func:`repro.graph.builder.build_csr`, so both paths are
    bit-identical on the same file.
    """
    from repro.graph.builder import _build_csr

    reader = make_reader(path, options.fmt, chunk_edges=chunk_edges)
    srcs, dsts, wts = [], [], []
    for chunk in reader.chunks():
        srcs.append(chunk.src)
        dsts.append(chunk.dst)
        if chunk.weights is not None:
            wts.append(chunk.weights)
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = np.empty(0, dtype=VERTEX_DTYPE)
        dst = np.empty(0, dtype=VERTEX_DTYPE)
    weights = np.concatenate(wts) if wts else None
    if weights is not None and weights.shape[0] != src.shape[0]:
        raise GraphError(f"{path}: some edges have weights and some do not")
    max_id = int(max(src.max(initial=-1), dst.max(initial=-1)))
    num_vertices = _resolve_num_vertices(options, reader, max_id)
    if options.densify and src.size:
        unique = np.unique(np.concatenate([src, dst]))
        src = np.searchsorted(unique, src).astype(VERTEX_DTYPE)
        dst = np.searchsorted(unique, dst).astype(VERTEX_DTYPE)
        num_vertices = int(unique.shape[0])
    return _build_csr(
        num_vertices, src, dst, weights=weights,
        remove_self_loops=options.remove_self_loops,
        name=name or graph_name_for(path),
    )


def graph_name_for(path: PathLike) -> str:
    """Human-readable graph name from a file path (strips .gz/.txt/.mtx...)."""
    name = Path(path).name
    for suffix in (".gz", ".txt", ".el", ".edges", ".mtx"):
        if name.lower().endswith(suffix):
            name = name[: -len(suffix)]
    return name or "graph"


# ---------------------------------------------------------------------------
# out-of-core CSR construction
# ---------------------------------------------------------------------------


def _stable_scatter(cursor: np.ndarray, key: np.ndarray, other: np.ndarray,
                    adjacency: np.ndarray, weights_in: Optional[np.ndarray],
                    weights_out: Optional[np.ndarray]) -> None:
    """Counting-sort one chunk into its CSR slots, preserving input order.

    ``cursor[v]`` is the next free slot of vertex ``v``'s neighbour run;
    a stable argsort of the chunk's grouping key plus per-run offsets turns
    the chunk into one vectorized fancy-index store.
    """
    order = np.argsort(key, kind="stable")
    ks = key[order]
    seg_starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
    seg_ids = ks[seg_starts]
    seg_lengths = np.diff(np.r_[seg_starts, ks.shape[0]])
    within = np.arange(ks.shape[0], dtype=INDEX_DTYPE) - np.repeat(seg_starts, seg_lengths)
    positions = cursor[ks] + within
    adjacency[positions] = other[order]
    if weights_in is not None:
        weights_out[positions] = weights_in[order]
    cursor[seg_ids] += seg_lengths


def _sort_neighbour_runs(index: np.ndarray, adjacency: np.ndarray,
                         weights: Optional[np.ndarray], block_edges: int) -> None:
    """Sort each vertex's neighbour run (stable), in bounded edge blocks.

    Equivalent to ``build_csr``'s global ``lexsort((other, group))`` because
    the scatter preserved input order within each run.
    """
    num_vertices = index.shape[0] - 1
    v0 = 0
    while v0 < num_vertices:
        lo = int(index[v0])
        v1 = int(np.searchsorted(index, lo + block_edges, side="left"))
        v1 = min(max(v1, v0 + 1), num_vertices)
        hi = int(index[v1])
        if hi > lo:
            seg = np.array(adjacency[lo:hi])
            counts = np.diff(index[v0 : v1 + 1])
            owners = np.repeat(np.arange(v0, v1, dtype=INDEX_DTYPE), counts)
            order = np.lexsort((seg, owners))
            adjacency[lo:hi] = seg[order]
            if weights is not None:
                weights[lo:hi] = np.array(weights[lo:hi])[order]
        v0 = v1


def _spill_chunks(reader, spill_dir: Path, remove_self_loops: bool):
    """Pass A: stream parsed chunks to binary spill files; gather totals."""
    num_chunks = 0
    num_edges = 0
    max_id = -1
    weighted = None
    degree_bins = 0
    out_counts = np.zeros(0, dtype=INDEX_DTYPE)
    in_counts = np.zeros(0, dtype=INDEX_DTYPE)
    for chunk in reader.chunks():
        src, dst, weights = chunk.src, chunk.dst, chunk.weights
        if remove_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]
        if weighted is None:
            weighted = weights is not None
        elif weighted != (weights is not None):
            raise GraphError(f"{reader.path}: some edges have weights and some do not")
        if not src.size:
            continue
        chunk_max = int(max(src.max(), dst.max()))
        max_id = max(max_id, chunk_max)
        if chunk_max >= degree_bins:
            degree_bins = chunk_max + 1
            out_counts = np.concatenate(
                [out_counts, np.zeros(degree_bins - out_counts.shape[0], dtype=INDEX_DTYPE)]
            )
            in_counts = np.concatenate(
                [in_counts, np.zeros(degree_bins - in_counts.shape[0], dtype=INDEX_DTYPE)]
            )
        out_counts[:degree_bins] += np.bincount(src, minlength=degree_bins).astype(INDEX_DTYPE)
        in_counts[:degree_bins] += np.bincount(dst, minlength=degree_bins).astype(INDEX_DTYPE)
        np.save(spill_dir / f"src.{num_chunks}.npy", src)
        np.save(spill_dir / f"dst.{num_chunks}.npy", dst)
        if weights is not None:
            np.save(spill_dir / f"w.{num_chunks}.npy", weights)
        num_chunks += 1
        num_edges += src.shape[0]
    return num_chunks, num_edges, max_id, bool(weighted), out_counts, in_counts


def build_csr_cache_entry(path: PathLike, entry_dir: Path,
                          options: ParseOptions = ParseOptions(),
                          name: Optional[str] = None,
                          chunk_edges: int = DEFAULT_CHUNK_EDGES,
                          digest: Optional[str] = None) -> None:
    """Build one binary-CSR cache entry out-of-core into ``entry_dir``.

    ``entry_dir`` must not be published (renamed into the cache) until this
    returns — the caller owns torn-write safety.  Peak memory is
    O(num_vertices + chunk_edges); the edge list itself only ever exists in
    the spill files and the memmapped outputs.
    """
    entry_dir = Path(entry_dir)
    entry_dir.mkdir(parents=True, exist_ok=True)
    reader = make_reader(path, options.fmt, chunk_edges=chunk_edges)
    with tempfile.TemporaryDirectory(prefix="repro-ingest-", dir=str(entry_dir)) as spill:
        spill_dir = Path(spill)
        (num_chunks, num_edges, max_id, weighted,
         out_counts, in_counts) = _spill_chunks(reader, spill_dir, options.remove_self_loops)

        num_vertices = _resolve_num_vertices(options, reader, max_id)
        id_map = None
        if options.densify and num_edges:
            id_map = np.union1d(np.flatnonzero(out_counts), np.flatnonzero(in_counts))

            def remap_counts(counts: np.ndarray) -> np.ndarray:
                dense = np.zeros(id_map.shape[0], dtype=INDEX_DTYPE)
                nonzero = np.flatnonzero(counts)
                dense[np.searchsorted(id_map, nonzero)] = counts[nonzero]
                return dense

            out_counts = remap_counts(out_counts)
            in_counts = remap_counts(in_counts)
            num_vertices = int(id_map.shape[0])

        def full_counts(counts: np.ndarray) -> np.ndarray:
            if counts.shape[0] < num_vertices:
                return np.concatenate(
                    [counts, np.zeros(num_vertices - counts.shape[0], dtype=INDEX_DTYPE)]
                )
            return counts[:num_vertices]

        out_index = np.concatenate(
            [[0], np.cumsum(full_counts(out_counts))]
        ).astype(INDEX_DTYPE)
        in_index = np.concatenate(
            [[0], np.cumsum(full_counts(in_counts))]
        ).astype(INDEX_DTYPE)

        def out_memmap(filename: str, dtype, length: int) -> np.ndarray:
            return np.lib.format.open_memmap(
                entry_dir / filename, mode="w+", dtype=dtype, shape=(max(length, 0),)
            )

        out_targets = out_memmap("out_targets.npy", VERTEX_DTYPE, num_edges)
        in_sources = out_memmap("in_sources.npy", VERTEX_DTYPE, num_edges)
        out_weights = out_memmap("out_weights.npy", WEIGHT_DTYPE, num_edges) if weighted else None
        in_weights = out_memmap("in_weights.npy", WEIGHT_DTYPE, num_edges) if weighted else None

        # Pass B: counting-sort scatter, chunk by chunk, both directions.
        out_cursor = out_index[:-1].copy()
        in_cursor = in_index[:-1].copy()
        for index in range(num_chunks):
            src = np.load(spill_dir / f"src.{index}.npy")
            dst = np.load(spill_dir / f"dst.{index}.npy")
            weights = np.load(spill_dir / f"w.{index}.npy") if weighted else None
            if id_map is not None:
                src = np.searchsorted(id_map, src).astype(VERTEX_DTYPE)
                dst = np.searchsorted(id_map, dst).astype(VERTEX_DTYPE)
            _stable_scatter(out_cursor, src, dst, out_targets, weights, out_weights)
            _stable_scatter(in_cursor, dst, src, in_sources, weights, in_weights)

        # Pass C: per-vertex neighbour sort in bounded blocks.
        _sort_neighbour_runs(out_index, out_targets, out_weights, chunk_edges)
        _sort_neighbour_runs(in_index, in_sources, in_weights, chunk_edges)

        np.save(entry_dir / "out_index.npy", out_index)
        np.save(entry_dir / "in_index.npy", in_index)
        for array in (out_targets, in_sources, out_weights, in_weights):
            if array is not None:
                array.flush()
                del array

    meta = {
        "version": CSR_CACHE_VERSION,
        "name": name or graph_name_for(path),
        "source": str(path),
        "source_sha256": digest or file_digest(path),
        "format": reader.format,
        "num_vertices": int(num_vertices),
        "num_edges": int(num_edges),
        "weighted": bool(weighted),
        "options": {
            "fmt": options.fmt,
            "num_vertices": options.num_vertices,
            "densify": options.densify,
            "remove_self_loops": options.remove_self_loops,
        },
        "validated": True,
    }
    tmp_meta = entry_dir / f"meta.json.tmp.{os.getpid()}"
    tmp_meta.write_text(json.dumps(meta, indent=2), encoding="utf-8")
    os.replace(tmp_meta, entry_dir / "meta.json")


# ---------------------------------------------------------------------------
# the binary-CSR cache
# ---------------------------------------------------------------------------


def default_graph_cache_root() -> Path:
    """Cache root: ``REPRO_GRAPH_CACHE``, else ``<REPRO_CACHE_DIR>/graphs``,
    else ``.repro-cache/graphs``."""
    value = os.environ.get(GRAPH_CACHE_ENV_VAR, "").strip()
    if value:
        return Path(value)
    memo_root = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if memo_root:
        return Path(memo_root) / "graphs"
    return Path(DEFAULT_GRAPH_CACHE_DIR)


class CSRBinaryCache:
    """Digest-keyed directory store of binary CSR graphs.

    Layout (all arrays are plain ``.npy`` files, memmap-openable)::

        <root>/csr-v1/<sha256-of-(digest, options)>/
            meta.json        # version stamp, source digest, shapes, options
            out_index.npy  out_targets.npy  in_index.npy  in_sources.npy
            [out_weights.npy  in_weights.npy]

    Entries are built in a sibling temporary directory and published with one
    ``os.replace`` (atomic on POSIX), so readers never observe partial
    entries; anything unreadable — missing array, bad JSON, wrong version or
    shape — is treated as a miss and rebuilt from the source file.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        base = Path(root) if root is not None else default_graph_cache_root()
        self.root = base / f"csr-v{CSR_CACHE_VERSION}"

    def entry_key(self, path: PathLike, options: ParseOptions = ParseOptions()) -> str:
        """Content digest identifying one (file, parse options) entry."""
        key = options.cache_key(file_digest(path))
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def entry_dir(self, entry_key: str) -> Path:
        return self.root / entry_key

    def load(self, entry_key: str, name: Optional[str] = None) -> Optional[MmapCSRGraph]:
        """Open an entry as an :class:`MmapCSRGraph`, or ``None`` on a miss.

        A corrupt entry (torn meta, truncated array, version skew) is a miss.
        """
        directory = self.entry_dir(entry_key)
        try:
            meta = json.loads((directory / "meta.json").read_text(encoding="utf-8"))
            if meta.get("version") != CSR_CACHE_VERSION:
                return None
            num_vertices = int(meta["num_vertices"])
            num_edges = int(meta["num_edges"])
            arrays = {}
            names = ["out_index", "out_targets", "in_index", "in_sources"]
            if meta.get("weighted"):
                names += ["out_weights", "in_weights"]
            for array_name in names:
                arrays[array_name] = np.load(
                    directory / f"{array_name}.npy", mmap_mode="r", allow_pickle=False
                )
            if arrays["out_index"].shape[0] != num_vertices + 1:
                return None
            if arrays["out_targets"].shape[0] != num_edges:
                return None
            if arrays["in_index"].shape[0] != num_vertices + 1:
                return None
            if arrays["in_sources"].shape[0] != num_edges:
                return None
            return MmapCSRGraph(
                out_index=arrays["out_index"],
                out_targets=arrays["out_targets"],
                in_index=arrays["in_index"],
                in_sources=arrays["in_sources"],
                out_weights=arrays.get("out_weights"),
                in_weights=arrays.get("in_weights"),
                name=name or meta.get("name", "graph"),
                validate_edges=False,
                backing_dir=directory,
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError, GraphError):
            return None

    def store(self, path: PathLike, options: ParseOptions = ParseOptions(),
              name: Optional[str] = None,
              chunk_edges: int = DEFAULT_CHUNK_EDGES) -> str:
        """Ingest ``path`` into the cache (idempotent); return the entry key."""
        entry_key = self.entry_key(path, options)
        if self.load(entry_key) is not None:
            return entry_key
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.entry_dir(entry_key)
        tmp = Path(
            tempfile.mkdtemp(prefix=f"{entry_key[:16]}.tmp.", dir=str(self.root))
        )
        try:
            build_csr_cache_entry(
                path, tmp, options=options, name=name, chunk_edges=chunk_edges,
                digest=file_digest(path),
            )
            if final.exists():
                # A previous (corrupt, or concurrently rebuilt) entry is in
                # the way; keep a valid one, retire a corrupt one.
                if self.load(entry_key) is not None:
                    return entry_key
                shutil.rmtree(final, ignore_errors=True)
            os.replace(tmp, final)
        except OSError:
            # Lost a publish race (ENOTEMPTY) or disk trouble: fine as long
            # as *someone's* valid entry is in place.
            if self.load(entry_key) is None:
                raise
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
        return entry_key

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for child in self.root.iterdir()
                   if child.is_dir() and (child / "meta.json").exists())


def ingest_graph(path: PathLike, *,
                 fmt: Optional[str] = None,
                 mmap: Union[bool, str] = "auto",
                 cache_root: Optional[PathLike] = None,
                 name: Optional[str] = None,
                 num_vertices: Optional[int] = None,
                 densify: bool = False,
                 remove_self_loops: bool = False,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES) -> CSRGraph:
    """Load a real-world graph file; the top-level ingestion entry point.

    ``mmap=True`` ingests through the binary-CSR cache and returns an
    :class:`~repro.graph.csr.MmapCSRGraph` whose arrays stream from disk;
    ``mmap=False`` parses straight to RAM; ``"auto"`` (default) picks the
    cache path when an entry already exists or the source file exceeds
    :data:`AUTO_MMAP_MIN_BYTES`.
    """
    options = ParseOptions(
        fmt=fmt, num_vertices=num_vertices,
        densify=densify, remove_self_loops=remove_self_loops,
    )
    if mmap not in (True, False, "auto"):
        raise GraphError(f"mmap must be True, False or 'auto', got {mmap!r}")
    use_mmap = mmap
    if use_mmap == "auto":
        cache = CSRBinaryCache(cache_root)
        entry_key = cache.entry_key(path, options)
        if cache.load(entry_key) is not None:
            use_mmap = True
        else:
            use_mmap = Path(path).stat().st_size > AUTO_MMAP_MIN_BYTES
    if not use_mmap:
        return parse_graph(path, options, name=name, chunk_edges=chunk_edges)
    cache = CSRBinaryCache(cache_root)
    entry_key = cache.store(path, options, name=name, chunk_edges=chunk_edges)
    graph = cache.load(entry_key, name=name)
    if graph is None:  # pragma: no cover - disk failure between store and load
        raise GraphError(f"binary-CSR cache entry for {path} vanished after ingest")
    return graph


# ---------------------------------------------------------------------------
# Matrix-Market writer (round-trip support)
# ---------------------------------------------------------------------------


def save_matrix_market(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a Matrix-Market ``coordinate`` file (1-based)."""
    from repro.graph.io import _format_edge_block

    path = Path(path)
    field_kind = "real" if graph.is_weighted else "pattern"
    sources, targets = graph.edge_arrays()
    with path.open("wb") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate {field_kind} general\n".encode())
        handle.write(f"% repro graph: {graph.name}\n".encode())
        handle.write(
            f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n".encode()
        )
        for start in range(0, sources.shape[0], DEFAULT_CHUNK_EDGES):
            stop = start + DEFAULT_CHUNK_EDGES
            weights = graph.out_weights[start:stop] if graph.is_weighted else None
            handle.write(
                _format_edge_block(sources[start:stop] + 1, targets[start:stop] + 1, weights)
            )


# ---------------------------------------------------------------------------
# dataset download / verification tooling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RemoteDataset:
    """One known downloadable dataset (URL plus optional pinned checksum)."""

    name: str
    url: str
    description: str
    sha256: Optional[str] = None


#: Real datasets the paper evaluates on (SNAP mirrors).  SNAP publishes no
#: checksums, so entries pin nothing; :func:`fetch_dataset` records the
#: digest on first download (trust-on-first-use) and verifies thereafter.
KNOWN_DATASETS: Dict[str, RemoteDataset] = {
    dataset.name: dataset
    for dataset in (
        RemoteDataset(
            "web-google",
            "https://snap.stanford.edu/data/web-Google.txt.gz",
            "Google web graph (875K vertices, 5.1M edges)",
        ),
        RemoteDataset(
            "soc-livejournal",
            "https://snap.stanford.edu/data/soc-LiveJournal1.txt.gz",
            "LiveJournal social network (4.8M vertices, 69M edges) — the paper's lj",
        ),
        RemoteDataset(
            "soc-pokec",
            "https://snap.stanford.edu/data/soc-pokec-relationships.txt.gz",
            "Pokec social network (1.6M vertices, 30.6M edges)",
        ),
        RemoteDataset(
            "wiki-talk",
            "https://snap.stanford.edu/data/wiki-Talk.txt.gz",
            "Wikipedia talk network (2.4M vertices, 5.0M edges)",
        ),
    )
}

#: Filename of the checksum lockfile kept next to downloaded datasets.
CHECKSUM_FILE = "CHECKSUMS.sha256"


def load_checksums(directory: PathLike) -> Dict[str, str]:
    """Read a ``sha256sum``-format lockfile: ``{filename: hexdigest}``."""
    lockfile = Path(directory) / CHECKSUM_FILE
    checksums: Dict[str, str] = {}
    if not lockfile.exists():
        return checksums
    for line in lockfile.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) >= 2:
            digest, filename = parts[0], parts[-1].lstrip("*")
            checksums[filename] = digest.lower()
    return checksums


def record_checksum(directory: PathLike, filename: str, digest: str) -> None:
    """Append/update one entry of the ``sha256sum``-format lockfile."""
    directory = Path(directory)
    checksums = load_checksums(directory)
    checksums[filename] = digest.lower()
    lines = [f"{checksums[key]}  {key}" for key in sorted(checksums)]
    tmp = directory / f"{CHECKSUM_FILE}.tmp.{os.getpid()}"
    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
    os.replace(tmp, directory / CHECKSUM_FILE)


def verify_file(path: PathLike, sha256: str) -> None:
    """Raise :class:`GraphError` unless the file's sha256 matches."""
    actual = sha256_file(path)
    if actual != sha256.lower():
        raise GraphError(
            f"checksum mismatch for {path}: expected {sha256.lower()}, got {actual}"
        )


def fetch_dataset(name_or_url: str, dest_dir: PathLike, *,
                  sha256: Optional[str] = None,
                  force: bool = False) -> Path:
    """Download a known dataset (or any URL) with checksum verification.

    The expected digest comes from, in priority order: the explicit
    ``sha256`` argument, the :data:`KNOWN_DATASETS` pin, the lockfile in
    ``dest_dir``.  When none exists the digest of the fresh download is
    recorded in the lockfile so later fetches (and :func:`verify_file` runs)
    catch silent upstream changes or corruption.
    """
    dataset = KNOWN_DATASETS.get(name_or_url)
    url = dataset.url if dataset else name_or_url
    if "://" not in url:
        raise GraphError(
            f"unknown dataset {name_or_url!r}; known: {', '.join(sorted(KNOWN_DATASETS))} "
            "(or pass a full URL)"
        )
    dest_dir = Path(dest_dir)
    dest_dir.mkdir(parents=True, exist_ok=True)
    filename = url.rstrip("/").rsplit("/", 1)[-1]
    dest = dest_dir / filename
    expected = sha256 or (dataset.sha256 if dataset else None) \
        or load_checksums(dest_dir).get(filename)

    if dest.exists() and not force:
        if expected:
            verify_file(dest, expected)
        return dest

    tmp = dest.with_name(f"{dest.name}.tmp.{os.getpid()}")
    try:
        with urllib.request.urlopen(url) as response, open(tmp, "wb") as handle:
            shutil.copyfileobj(response, handle, length=1 << 20)
        if expected:
            verify_file(tmp, expected)
        digest = sha256_file(tmp)
        os.replace(tmp, dest)
    except GraphError:
        tmp.unlink(missing_ok=True)
        raise
    except OSError as error:
        tmp.unlink(missing_ok=True)
        raise GraphError(f"download of {url} failed: {error}") from error
    record_checksum(dest_dir, filename, digest)
    return dest
