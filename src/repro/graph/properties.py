"""Degree and skew analysis of graphs (reproduces the paper's Table I).

The paper classifies a vertex as *hot* when its degree is greater than or
equal to the average degree, and reports (a) the percentage of hot vertices
and (b) the percentage of edges attached to hot vertices ("edge coverage"),
separately for in-edges and out-edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of one degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    p90: float
    p99: float

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeStatistics":
        """Compute statistics for a degree array."""
        if degrees.size == 0:
            return cls(0, 0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            minimum=int(degrees.min()),
            maximum=int(degrees.max()),
            mean=float(degrees.mean()),
            median=float(np.median(degrees)),
            p90=float(np.percentile(degrees, 90)),
            p99=float(np.percentile(degrees, 99)),
        )


@dataclass(frozen=True)
class SkewReport:
    """One dataset row of the paper's Table I.

    Attributes
    ----------
    in_hot_vertex_pct:
        Percentage of vertices whose in-degree >= average degree.
    in_edge_coverage_pct:
        Percentage of in-edges attached to those hot vertices.
    out_hot_vertex_pct, out_edge_coverage_pct:
        Same, for out-degrees / out-edges.
    """

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    in_hot_vertex_pct: float
    in_edge_coverage_pct: float
    out_hot_vertex_pct: float
    out_edge_coverage_pct: float

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a plain dictionary (for tabular output)."""
        return {
            "dataset": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_degree": round(self.average_degree, 2),
            "in_hot_vertices_pct": round(self.in_hot_vertex_pct, 1),
            "in_edge_coverage_pct": round(self.in_edge_coverage_pct, 1),
            "out_hot_vertices_pct": round(self.out_hot_vertex_pct, 1),
            "out_edge_coverage_pct": round(self.out_edge_coverage_pct, 1),
        }


def hot_vertex_mask(degrees: np.ndarray, threshold: float | None = None) -> np.ndarray:
    """Boolean mask of hot vertices: degree >= threshold (default: mean degree)."""
    degrees = np.asarray(degrees)
    if threshold is None:
        threshold = float(degrees.mean()) if degrees.size else 0.0
    return degrees >= threshold


def hot_vertex_fraction(degrees: np.ndarray, threshold: float | None = None) -> float:
    """Fraction of vertices classified as hot."""
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return 0.0
    return float(hot_vertex_mask(degrees, threshold).mean())


def edge_coverage(degrees: np.ndarray, threshold: float | None = None) -> float:
    """Fraction of edges attached to hot vertices."""
    degrees = np.asarray(degrees)
    total = degrees.sum()
    if total == 0:
        return 0.0
    hot = hot_vertex_mask(degrees, threshold)
    return float(degrees[hot].sum() / total)


def degree_statistics(graph: CSRGraph) -> Dict[str, DegreeStatistics]:
    """Return in- and out-degree statistics for a graph."""
    return {
        "in": DegreeStatistics.from_degrees(graph.in_degrees),
        "out": DegreeStatistics.from_degrees(graph.out_degrees),
    }


def skew_report(graph: CSRGraph) -> SkewReport:
    """Compute the Table I row for a graph.

    The hot-vertex threshold is the average degree of the graph (the paper's
    definition), applied independently to the in- and out-degree
    distributions.
    """
    threshold = graph.average_degree
    return SkewReport(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        in_hot_vertex_pct=100.0 * hot_vertex_fraction(graph.in_degrees, threshold),
        in_edge_coverage_pct=100.0 * edge_coverage(graph.in_degrees, threshold),
        out_hot_vertex_pct=100.0 * hot_vertex_fraction(graph.out_degrees, threshold),
        out_edge_coverage_pct=100.0 * edge_coverage(graph.out_degrees, threshold),
    )


def gini_coefficient(degrees: np.ndarray) -> float:
    """Gini coefficient of a degree distribution (0 = uniform, →1 = extreme skew).

    Not used by the paper directly, but handy for characterising generated
    datasets and for property-based tests on the generators.
    """
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    n = degrees.size
    if n == 0:
        return 0.0
    total = degrees.sum()
    if total == 0:
        return 0.0
    cumulative = np.cumsum(degrees)
    # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
    return float((n + 1 - 2.0 * cumulative.sum() / total) / n)
