"""Degree and skew analysis of graphs (reproduces the paper's Table I).

The paper classifies a vertex as *hot* when its degree is greater than or
equal to the average degree, and reports (a) the percentage of hot vertices
and (b) the percentage of edges attached to hot vertices ("edge coverage"),
separately for in-edges and out-edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of one degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    p90: float
    p99: float

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeStatistics":
        """Compute statistics for a degree array."""
        if degrees.size == 0:
            return cls(0, 0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            minimum=int(degrees.min()),
            maximum=int(degrees.max()),
            mean=float(degrees.mean()),
            median=float(np.median(degrees)),
            p90=float(np.percentile(degrees, 90)),
            p99=float(np.percentile(degrees, 99)),
        )


@dataclass(frozen=True)
class SkewReport:
    """One dataset row of the paper's Table I.

    Attributes
    ----------
    in_hot_vertex_pct:
        Percentage of vertices whose in-degree >= average degree.
    in_edge_coverage_pct:
        Percentage of in-edges attached to those hot vertices.
    out_hot_vertex_pct, out_edge_coverage_pct:
        Same, for out-degrees / out-edges.
    """

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    in_hot_vertex_pct: float
    in_edge_coverage_pct: float
    out_hot_vertex_pct: float
    out_edge_coverage_pct: float
    profile: Optional["SkewProfile"] = None

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a plain dictionary (for tabular output)."""
        row = {
            "dataset": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_degree": round(self.average_degree, 2),
            "in_hot_vertices_pct": round(self.in_hot_vertex_pct, 1),
            "in_edge_coverage_pct": round(self.in_edge_coverage_pct, 1),
            "out_hot_vertices_pct": round(self.out_hot_vertex_pct, 1),
            "out_edge_coverage_pct": round(self.out_edge_coverage_pct, 1),
        }
        if self.profile is not None:
            row.update(self.profile.as_dict())
        return row


@dataclass(frozen=True)
class SkewProfile:
    """Extended per-graph skew columns beyond the paper's Table I.

    Characterizes *how* skewed a degree distribution is, not just how much
    of it clears the hot threshold: Gini coefficients, tail percentiles,
    the share of edges covered by the hottest 1% of vertices, and the
    zero-degree fraction (real crawls have large dangling tails that the
    synthetic stand-ins lack).
    """

    in_gini: float
    out_gini: float
    in_max_degree: int
    out_max_degree: int
    in_p99_degree: float
    out_p99_degree: float
    in_top1pct_edge_coverage_pct: float
    out_top1pct_edge_coverage_pct: float
    in_zero_degree_pct: float
    out_zero_degree_pct: float

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "SkewProfile":
        in_degrees = np.asarray(graph.in_degrees)
        out_degrees = np.asarray(graph.out_degrees)
        return cls(
            in_gini=gini_coefficient(in_degrees),
            out_gini=gini_coefficient(out_degrees),
            in_max_degree=int(in_degrees.max(initial=0)),
            out_max_degree=int(out_degrees.max(initial=0)),
            in_p99_degree=float(np.percentile(in_degrees, 99)) if in_degrees.size else 0.0,
            out_p99_degree=float(np.percentile(out_degrees, 99)) if out_degrees.size else 0.0,
            in_top1pct_edge_coverage_pct=100.0 * top_fraction_edge_coverage(in_degrees),
            out_top1pct_edge_coverage_pct=100.0 * top_fraction_edge_coverage(out_degrees),
            in_zero_degree_pct=100.0 * float((in_degrees == 0).mean()) if in_degrees.size else 0.0,
            out_zero_degree_pct=100.0 * float((out_degrees == 0).mean()) if out_degrees.size else 0.0,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "in_gini": round(self.in_gini, 3),
            "out_gini": round(self.out_gini, 3),
            "in_max_degree": self.in_max_degree,
            "out_max_degree": self.out_max_degree,
            "in_p99_degree": round(self.in_p99_degree, 1),
            "out_p99_degree": round(self.out_p99_degree, 1),
            "in_top1pct_edge_coverage_pct": round(self.in_top1pct_edge_coverage_pct, 1),
            "out_top1pct_edge_coverage_pct": round(self.out_top1pct_edge_coverage_pct, 1),
            "in_zero_degree_pct": round(self.in_zero_degree_pct, 1),
            "out_zero_degree_pct": round(self.out_zero_degree_pct, 1),
        }


def hot_vertex_mask(degrees: np.ndarray, threshold: float | None = None) -> np.ndarray:
    """Boolean mask of hot vertices: degree >= threshold (default: mean degree)."""
    degrees = np.asarray(degrees)
    if threshold is None:
        threshold = float(degrees.mean()) if degrees.size else 0.0
    return degrees >= threshold


def hot_vertex_fraction(degrees: np.ndarray, threshold: float | None = None) -> float:
    """Fraction of vertices classified as hot."""
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return 0.0
    return float(hot_vertex_mask(degrees, threshold).mean())


def edge_coverage(degrees: np.ndarray, threshold: float | None = None) -> float:
    """Fraction of edges attached to hot vertices."""
    degrees = np.asarray(degrees)
    total = degrees.sum()
    if total == 0:
        return 0.0
    hot = hot_vertex_mask(degrees, threshold)
    return float(degrees[hot].sum() / total)


def degree_statistics(graph: CSRGraph) -> Dict[str, DegreeStatistics]:
    """Return in- and out-degree statistics for a graph."""
    return {
        "in": DegreeStatistics.from_degrees(graph.in_degrees),
        "out": DegreeStatistics.from_degrees(graph.out_degrees),
    }


def top_fraction_edge_coverage(degrees: np.ndarray, fraction: float = 0.01) -> float:
    """Fraction of edges attached to the top ``fraction`` highest-degree vertices."""
    degrees = np.asarray(degrees)
    total = degrees.sum()
    if total == 0 or degrees.size == 0:
        return 0.0
    count = max(1, int(round(degrees.size * fraction)))
    top = np.partition(degrees, degrees.size - count)[degrees.size - count:]
    return float(top.sum() / total)


def skew_report(graph: CSRGraph, extended: bool = False) -> SkewReport:
    """Compute the Table I row for a graph.

    The hot-vertex threshold is the average degree of the graph (the paper's
    definition), applied independently to the in- and out-degree
    distributions.  ``extended=True`` attaches a :class:`SkewProfile` with
    the distribution-shape columns (Gini, tails, zero-degree share).
    """
    threshold = graph.average_degree
    return SkewReport(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        in_hot_vertex_pct=100.0 * hot_vertex_fraction(graph.in_degrees, threshold),
        in_edge_coverage_pct=100.0 * edge_coverage(graph.in_degrees, threshold),
        out_hot_vertex_pct=100.0 * hot_vertex_fraction(graph.out_degrees, threshold),
        out_edge_coverage_pct=100.0 * edge_coverage(graph.out_degrees, threshold),
        profile=SkewProfile.from_graph(graph) if extended else None,
    )


def gini_coefficient(degrees: np.ndarray) -> float:
    """Gini coefficient of a degree distribution (0 = uniform, →1 = extreme skew).

    Not used by the paper directly, but handy for characterising generated
    datasets and for property-based tests on the generators.
    """
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    n = degrees.size
    if n == 0:
        return 0.0
    total = degrees.sum()
    if total == 0:
        return 0.0
    cumulative = np.cumsum(degrees)
    # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
    return float((n + 1 - 2.0 * cumulative.sum() / total) / n)
