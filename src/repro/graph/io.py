"""Persistence of graphs as edge-list text files and compressed NumPy archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.builder import build_csr
from repro.graph.csr import CSRGraph, GraphError

PathLike = Union[str, Path]


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a whitespace-separated ``src dst [weight]`` text file."""
    path = Path(path)
    sources, targets = graph.edge_arrays()
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# repro edge list: {graph.name}\n")
        handle.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        if graph.is_weighted:
            for s, t, w in zip(sources.tolist(), targets.tolist(), graph.out_weights.tolist()):
                handle.write(f"{s} {t} {w:g}\n")
        else:
            for s, t in zip(sources.tolist(), targets.tolist()):
                handle.write(f"{s} {t}\n")


def load_edge_list(path: PathLike, num_vertices: int | None = None) -> CSRGraph:
    """Load a graph written by :func:`save_edge_list` (or any edge-list file).

    Lines starting with ``#`` are comments.  A ``# vertices=N`` comment, if
    present, fixes the vertex count; otherwise it is inferred from the data
    unless ``num_vertices`` is given.
    """
    path = Path(path)
    sources, targets, weights = [], [], []
    declared_vertices = None
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "vertices=" in line:
                    for token in line.replace("#", "").split():
                        if token.startswith("vertices="):
                            declared_vertices = int(token.split("=", 1)[1])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"malformed edge-list line: {line!r}")
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
            if len(parts) >= 3:
                weights.append(float(parts[2]))

    if weights and len(weights) != len(sources):
        raise GraphError("some edges have weights and some do not")

    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    wts = np.asarray(weights, dtype=np.float64) if weights else None
    if num_vertices is None:
        num_vertices = declared_vertices
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1 if src.size else 0
    return build_csr(num_vertices, src, dst, weights=wts, name=path.stem)


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph in compressed NumPy format (fast round-trip)."""
    path = Path(path)
    payload = {
        "out_index": graph.out_index,
        "out_targets": graph.out_targets,
        "in_index": graph.in_index,
        "in_sources": graph.in_sources,
        "name": np.array(graph.name),
    }
    if graph.out_weights is not None:
        payload["out_weights"] = graph.out_weights
        payload["in_weights"] = graph.in_weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            out_index=data["out_index"],
            out_targets=data["out_targets"],
            in_index=data["in_index"],
            in_sources=data["in_sources"],
            out_weights=data["out_weights"] if "out_weights" in data else None,
            in_weights=data["in_weights"] if "in_weights" in data else None,
            name=str(data["name"]),
        )
