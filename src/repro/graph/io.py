"""Persistence of graphs as edge-list text files and compressed NumPy archives.

The public ``load_*``/``save_*`` functions are retained as thin deprecated
wrappers: graph acquisition is unified behind :func:`repro.graph.load` and
:func:`repro.graph.save` (see :mod:`repro.graph.source`), and real-world
files go through the chunked parsers of :mod:`repro.graph.ingest`.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]

#: Edges formatted per block by the vectorized writer.
_WRITE_CHUNK_EDGES = 1 << 20


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# vectorized edge-list formatting
# ---------------------------------------------------------------------------


def _format_edge_block(sources: np.ndarray, targets: np.ndarray,
                       weights: Optional[np.ndarray] = None) -> bytes:
    """Format one block of edges as ``src dst [weight]`` lines, vectorized.

    A single C-level ``%``-format over the interleaved columns replaces the
    per-edge Python f-string loop (roughly 2x faster unweighted and 10x for
    the integral weights :meth:`CSRGraph.with_random_weights` produces; see
    ``benchmarks/bench_ingest.py``).  Non-integral weights keep ``%g``
    semantics through a per-line fallback.
    """
    count = int(sources.shape[0])
    if count == 0:
        return b""
    if weights is None:
        merged = [None] * (2 * count)
        merged[0::2] = sources.tolist()
        merged[1::2] = targets.tolist()
        text = ("%d %d\n" * count) % tuple(merged)
        return text.encode("ascii")
    integral = bool(np.all(weights == np.floor(weights))) and bool(
        np.all(np.abs(weights) < 2**53)
    )
    merged = [None] * (3 * count)
    merged[0::3] = sources.tolist()
    merged[1::3] = targets.tolist()
    if integral:
        # "%g" of an integer prints exactly like "%d", and formatting ints
        # through the bulk pattern is ~10x faster than formatting floats.
        merged[2::3] = weights.astype(np.int64).tolist()
        text = ("%d %d %g\n" * count) % tuple(merged)
        return text.encode("ascii")
    merged[2::3] = weights.tolist()
    text = ("%d %d %g\n" * count) % tuple(merged)
    return text.encode("ascii")


def _save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    path = Path(path)
    sources, targets = graph.edge_arrays()
    with path.open("wb") as handle:
        handle.write(f"# repro edge list: {graph.name}\n".encode("utf-8"))
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges}\n".encode("utf-8")
        )
        for start in range(0, sources.shape[0], _WRITE_CHUNK_EDGES):
            stop = start + _WRITE_CHUNK_EDGES
            weights = graph.out_weights[start:stop] if graph.is_weighted else None
            handle.write(_format_edge_block(sources[start:stop], targets[start:stop], weights))


def _load_edge_list(path: PathLike, num_vertices: Optional[int] = None) -> CSRGraph:
    from repro.graph.ingest import ParseOptions, graph_name_for, parse_graph

    return parse_graph(
        path,
        ParseOptions(fmt="edgelist", num_vertices=num_vertices),
        name=graph_name_for(path),
    )


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a whitespace-separated ``src dst [weight]`` text file.

    .. deprecated:: use :func:`repro.graph.save` instead.
    """
    _deprecated("repro.graph.io.save_edge_list", "repro.graph.save")
    _save_edge_list(graph, path)


def load_edge_list(path: PathLike, num_vertices: Optional[int] = None) -> CSRGraph:
    """Load an edge-list file (comments ``#``/``%``, optional weight column).

    .. deprecated:: use ``repro.graph.load("file:<path>")`` instead.
    """
    _deprecated("repro.graph.io.load_edge_list", 'repro.graph.load("file:<path>")')
    return _load_edge_list(path, num_vertices=num_vertices)


# ---------------------------------------------------------------------------
# npz round-trip
# ---------------------------------------------------------------------------


def _save_npz(graph: CSRGraph, path: PathLike) -> None:
    path = Path(path)
    payload = {
        "out_index": graph.out_index,
        "out_targets": graph.out_targets,
        "in_index": graph.in_index,
        "in_sources": graph.in_sources,
        "name": np.array(graph.name),
    }
    if graph.out_weights is not None:
        payload["out_weights"] = graph.out_weights
        payload["in_weights"] = graph.in_weights
    np.savez_compressed(path, **payload)


def _load_npz(path: PathLike) -> CSRGraph:
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            out_index=data["out_index"],
            out_targets=data["out_targets"],
            in_index=data["in_index"],
            in_sources=data["in_sources"],
            out_weights=data["out_weights"] if "out_weights" in data else None,
            in_weights=data["in_weights"] if "in_weights" in data else None,
            name=str(data["name"]),
        )


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph in compressed NumPy format (fast round-trip).

    .. deprecated:: use :func:`repro.graph.save` instead.
    """
    _deprecated("repro.graph.io.save_npz", "repro.graph.save")
    _save_npz(graph, path)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`.

    .. deprecated:: use ``repro.graph.load("npz:<path>")`` instead.
    """
    _deprecated("repro.graph.io.load_npz", 'repro.graph.load("npz:<path>")')
    return _load_npz(path)
