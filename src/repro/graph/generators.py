"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on five high-skew natural graphs (LiveJournal, PLD,
Twitter, Kron, SD1-ARC), one low-skew graph (Friendster) and one no-skew
uniform random graph.  Real datasets are tens of gigabytes and are not
available offline, so this module provides scaled-down generators whose
*degree-distribution shape* matches each class of dataset:

* :func:`chung_lu_graph` — power-law degree sequence with edges sampled
  proportionally to vertex weights (Chung-Lu model); both the in- and the
  out-degree distributions are skewed, as in natural graphs.
* :func:`rmat_graph` — the R-MAT recursive-matrix generator used by the
  paper's ``kr`` (Kron) and ``uni`` (R-MAT with uniform parameters) datasets.
* :func:`low_skew_graph` — a mildly skewed Chung-Lu variant modelling
  Friendster's comparatively flat degree distribution.
* :func:`uniform_random_graph` — Erdős–Rényi-style uniform edge endpoints
  (no skew), the paper's adversarial ``uni`` dataset.
"""

from __future__ import annotations

import functools
import warnings

import numpy as np

from repro.graph.builder import _build_csr
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


def _powerlaw_weights(num_vertices: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Vertex attractiveness weights following a (truncated) power law.

    ``weight[i] ~ (i + 1) ** -1/(exponent - 1)`` over a random permutation of
    ranks, i.e. a Zipf-like profile whose heavy tail is controlled by
    ``exponent`` (smaller exponent = heavier tail = more skew).
    """
    if exponent <= 1.0:
        raise ValueError("power-law exponent must be > 1")
    ranks = rng.permutation(num_vertices) + 1
    return ranks.astype(np.float64) ** (-1.0 / (exponent - 1.0))


def _sample_endpoints(
    weights: np.ndarray,
    num_edges: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_edges`` endpoints with probability proportional to weights."""
    probabilities = weights / weights.sum()
    return rng.choice(weights.shape[0], size=num_edges, p=probabilities).astype(VERTEX_DTYPE)


def _chung_lu_graph(
    num_vertices: int,
    average_degree: float,
    exponent: float = 2.1,
    seed: int = 0,
    name: str = "chung-lu",
    deduplicate: bool = True,
) -> CSRGraph:
    """Generate a skewed (power-law) directed graph via the Chung-Lu model.

    Both endpoints of every edge are drawn proportionally to a power-law
    weight vector, which produces the in- *and* out-degree skew that
    characterises natural graphs (Table I of the paper).

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    average_degree:
        Target average degree (edges ≈ ``num_vertices * average_degree``).
    exponent:
        Power-law exponent; 1.8–2.4 covers the range from very high to
        moderate skew.
    seed:
        RNG seed for reproducibility.
    deduplicate:
        Collapse parallel edges (slightly lowers the realized average degree).
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = np.random.default_rng(seed)
    num_edges = int(round(num_vertices * average_degree))
    weights = _powerlaw_weights(num_vertices, exponent, rng)
    sources = _sample_endpoints(weights, num_edges, rng)
    targets = _sample_endpoints(weights, num_edges, rng)
    return _build_csr(
        num_vertices,
        sources,
        targets,
        remove_self_loops=True,
        deduplicate=deduplicate,
        name=name,
    )


def _low_skew_graph(
    num_vertices: int,
    average_degree: float,
    seed: int = 0,
    name: str = "low-skew",
) -> CSRGraph:
    """Generate a low-skew graph (Friendster-like adversarial dataset).

    Uses a gentle power law (exponent 3.5) so that hot vertices cover far
    fewer edges than in natural graphs, which is the regime where the paper
    shows pinning-based schemes break down (Fig. 9).
    """
    return _chung_lu_graph(
        num_vertices,
        average_degree,
        exponent=3.5,
        seed=seed,
        name=name,
    )


def _uniform_random_graph(
    num_vertices: int,
    average_degree: float,
    seed: int = 0,
    name: str = "uniform",
) -> CSRGraph:
    """Generate a no-skew graph with uniformly random edge endpoints."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = np.random.default_rng(seed)
    num_edges = int(round(num_vertices * average_degree))
    sources = rng.integers(0, num_vertices, size=num_edges).astype(VERTEX_DTYPE)
    targets = rng.integers(0, num_vertices, size=num_edges).astype(VERTEX_DTYPE)
    return _build_csr(
        num_vertices,
        sources,
        targets,
        remove_self_loops=True,
        deduplicate=True,
        name=name,
    )


def _rmat_graph(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "rmat",
    deduplicate: bool = True,
) -> CSRGraph:
    """Generate an R-MAT (Kronecker) graph with ``2**scale`` vertices.

    The default ``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`` parameters are the
    Graph500 values used by the GAP benchmark suite's Kron generator, the
    source of the paper's ``kr`` dataset.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("R-MAT probabilities must sum to at most 1")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = int(round(num_vertices * edge_factor))

    sources = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    targets = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    for _ in range(scale):
        sources <<= 1
        targets <<= 1
        draw = rng.random(num_edges)
        # Quadrant selection: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        right = (draw >= a) & (draw < a + b) | (draw >= a + b + c)
        down = draw >= a + b
        targets += right.astype(VERTEX_DTYPE)
        sources += down.astype(VERTEX_DTYPE)

    # Permute vertex IDs so that structure does not trivially follow ID order.
    permutation = rng.permutation(num_vertices).astype(VERTEX_DTYPE)
    sources = permutation[sources]
    targets = permutation[targets]
    return _build_csr(
        num_vertices,
        sources,
        targets,
        remove_self_loops=True,
        deduplicate=deduplicate,
        name=name,
    )


def _planted_community_graph(
    num_communities: int,
    community_size: int,
    intra_degree: float = 8.0,
    inter_degree: float = 2.0,
    exponent: float = 2.1,
    seed: int = 0,
    name: str = "community",
) -> CSRGraph:
    """Generate a power-law graph with planted community structure.

    Used by tests and examples to exercise the claim that skew-aware
    reordering (DBG in particular) should not destroy community locality.
    Vertices are grouped into equally sized communities; ``intra_degree``
    edges per vertex stay within the community and ``inter_degree`` edges
    choose endpoints Chung-Lu style across the whole graph.
    """
    rng = np.random.default_rng(seed)
    num_vertices = num_communities * community_size
    weights = _powerlaw_weights(num_vertices, exponent, rng)

    intra_edges = int(round(num_vertices * intra_degree))
    community_of = np.arange(num_vertices) // community_size
    intra_sources = rng.integers(0, num_vertices, size=intra_edges).astype(VERTEX_DTYPE)
    offsets = rng.integers(0, community_size, size=intra_edges).astype(VERTEX_DTYPE)
    intra_targets = community_of[intra_sources] * community_size + offsets

    inter_edges = int(round(num_vertices * inter_degree))
    inter_sources = _sample_endpoints(weights, inter_edges, rng)
    inter_targets = _sample_endpoints(weights, inter_edges, rng)

    sources = np.concatenate([intra_sources, inter_sources])
    targets = np.concatenate([intra_targets, inter_targets])
    return _build_csr(
        num_vertices,
        sources,
        targets,
        remove_self_loops=True,
        deduplicate=True,
        name=name,
    )


# ---------------------------------------------------------------------------
# deprecated public entry points
# ---------------------------------------------------------------------------
#
# Graph acquisition is unified behind ``repro.graph.load(spec)``; these
# wrappers keep the original signatures working while steering callers to the
# spec grammar (e.g. ``"rmat:scale=18,seed=7"``, ``"chung-lu:n=4096,deg=8"``).


def _deprecated_generator(impl, public_name: str, spec_head: str):
    @functools.wraps(impl)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.graph.generators.{public_name} is deprecated; "
            f'use repro.graph.load("{spec_head}:...") instead',
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    wrapper.__name__ = public_name
    wrapper.__qualname__ = public_name
    return wrapper


chung_lu_graph = _deprecated_generator(_chung_lu_graph, "chung_lu_graph", "chung-lu")
low_skew_graph = _deprecated_generator(_low_skew_graph, "low_skew_graph", "low-skew")
uniform_random_graph = _deprecated_generator(
    _uniform_random_graph, "uniform_random_graph", "uniform"
)
rmat_graph = _deprecated_generator(_rmat_graph, "rmat_graph", "rmat")
planted_community_graph = _deprecated_generator(
    _planted_community_graph, "planted_community_graph", "community"
)
