"""Unified graph acquisition: ``repro.graph.load(spec)``.

One string spec replaces the four parallel entry points that accumulated
around graph construction (the :mod:`~repro.graph.generators` functions, the
:mod:`~repro.graph.datasets` registry, :mod:`~repro.graph.io` load/save and
raw ``build_csr``).  The grammar is ``"head"`` or ``"head:rest"``:

``"lj"``, ``"kr"``, ...
    Named synthetic datasets from the Table V registry (scaled by the
    :class:`LoadContext`).
``"rmat:scale=18,seed=7"``, ``"chung-lu:n=4096,deg=8"``, ...
    Synthetic generators with explicit ``key=value`` parameters.
``"file:web-Google.txt.gz"``, ``"mtx:graph.mtx"``, ``"npz:graph.npz"``
    On-disk graphs, routed through :mod:`repro.graph.ingest` (gzip
    transparent, binary-CSR cache, optional mmap backing).  File specs accept
    a ``?key=value`` option suffix, e.g. ``"file:crawl.txt?densify=1"``.

New heads register through :func:`register_source`, so downstream code can
extend the grammar without touching this module.

:func:`canonical_spec` maps a spec to the byte-exact form used in memo keys:
synthetic specs canonicalize to themselves (``"lj"`` stays ``"lj"``, keeping
``MEMO_VERSION`` stable), while file specs canonicalize to
``file:<name>@sha256:<digest>`` so memo entries are content-addressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.graph.csr import CSRGraph, GraphError

PathLike = Union[str, Path]

#: Digest prefix length used in canonical file specs (collision probability
#: over a cache of millions of files is negligible at 16 hex chars / 64 bits).
CANONICAL_DIGEST_CHARS = 16


@dataclass(frozen=True)
class LoadContext:
    """Experiment-level parameters that shape how a spec is materialized.

    These are the knobs that stay *outside* the spec string so one spec can
    be reused across sweep points: the dataset scale factor, the RNG seed,
    whether SSSP-style random weights are attached, and how file-backed
    graphs are cached/mapped.
    """

    scale: float = 1.0
    seed: int = 42
    weighted: bool = False
    mmap: Union[bool, str] = "auto"
    cache_root: Optional[Path] = None


@dataclass(frozen=True)
class GraphSource:
    """One registered spec head.

    ``loader`` materializes ``rest`` (the part after ``head:``) under a
    :class:`LoadContext`; ``canonicalize`` maps ``rest`` to its memo-key form
    (identity when omitted).
    """

    head: str
    description: str
    loader: Callable[[str, LoadContext], CSRGraph] = field(repr=False)
    canonicalize: Optional[Callable[[str], str]] = field(default=None, repr=False)


_SOURCES: Dict[str, GraphSource] = {}


def register_source(head: str, description: str,
                    canonicalize: Optional[Callable[[str], str]] = None):
    """Register a loader for a spec head (decorator).

    The loader is called as ``loader(rest, context)`` where ``rest`` is the
    spec text after ``head:`` (empty string when the spec is bare).
    """

    def decorator(loader: Callable[[str, LoadContext], CSRGraph]):
        if head in _SOURCES:
            raise ValueError(f"graph source head {head!r} already registered")
        _SOURCES[head] = GraphSource(head, description, loader, canonicalize)
        return loader

    return decorator


def list_sources() -> List[GraphSource]:
    """All registered sources, dataset names included, sorted by head."""
    return [_SOURCES[head] for head in sorted(_SOURCES)]


def split_spec(spec: str) -> Tuple[str, str]:
    """Split ``"head:rest"`` into ``(head, rest)`` (``rest`` may be empty)."""
    if not isinstance(spec, str) or not spec.strip():
        raise GraphError(f"graph spec must be a non-empty string, got {spec!r}")
    spec = spec.strip()
    head, sep, rest = spec.partition(":")
    return head.strip(), rest.strip() if sep else ""


def _known_heads() -> str:
    return ", ".join(sorted(_SOURCES))


def _resolve(spec: str) -> Tuple[GraphSource, str]:
    head, rest = split_spec(spec)
    source = _SOURCES.get(head)
    if source is None:
        raise GraphError(
            f"unknown graph spec {spec!r}; known heads: {_known_heads()}"
        )
    return source, rest


def load(spec: str, *,
         scale: float = 1.0,
         seed: int = 42,
         weighted: bool = False,
         mmap: Union[bool, str] = "auto",
         cache_root: Optional[PathLike] = None) -> CSRGraph:
    """Materialize a graph from a spec string — the unified entry point.

    Examples
    --------
    >>> load("lj", scale=0.1)                    # doctest: +SKIP
    >>> load("rmat:scale=18,seed=7")             # doctest: +SKIP
    >>> load("file:web-Google.txt.gz")           # doctest: +SKIP
    >>> load("mtx:graph.mtx", weighted=True)     # doctest: +SKIP
    """
    context = LoadContext(
        scale=scale, seed=seed, weighted=weighted, mmap=mmap,
        cache_root=Path(cache_root) if cache_root is not None else None,
    )
    source, rest = _resolve(spec)
    return source.loader(rest, context)


def load_for_experiment(spec: str, *,
                        scale: float,
                        seed: int,
                        weighted: bool,
                        cache_root: Optional[PathLike] = None) -> CSRGraph:
    """The experiment runner's loader (plain args to avoid config imports)."""
    return load(
        spec, scale=scale, seed=seed, weighted=weighted, cache_root=cache_root,
    )


def canonical_spec(spec: str) -> str:
    """Canonical (memo-key) form of a spec.

    Synthetic specs canonicalize to themselves byte-for-byte — existing memo
    entries keyed on dataset names like ``"lj"`` stay valid and
    ``MEMO_VERSION`` does not move.  File-backed specs canonicalize to a
    content-addressed form, so renaming a file keeps its memo entries while
    editing it invalidates them.
    """
    source, rest = _resolve(spec)
    if source.canonicalize is None:
        return spec.strip()
    return f"{source.head}:{source.canonicalize(rest)}"


# ---------------------------------------------------------------------------
# spec kwargs
# ---------------------------------------------------------------------------


def _parse_value(text: str):
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_spec_kwargs(rest: str, spec_head: str) -> Dict[str, object]:
    """Parse ``"k1=v1,k2=v2"`` into a dict with int/float/bool coercion."""
    kwargs: Dict[str, object] = {}
    if not rest:
        return kwargs
    for item in rest.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise GraphError(
                f"malformed parameter {item!r} in graph spec "
                f"{spec_head}:{rest!r} (expected key=value)"
            )
        kwargs[key.strip()] = _parse_value(value.strip())
    return kwargs


def _take_kwargs(kwargs: Dict[str, object], allowed: Dict[str, str],
                 spec_head: str) -> Dict[str, object]:
    """Map spec keys to python kwargs via an alias table; reject unknowns."""
    out: Dict[str, object] = {}
    for key, value in kwargs.items():
        target = allowed.get(key)
        if target is None:
            raise GraphError(
                f"unknown parameter {key!r} for graph spec head {spec_head!r}; "
                f"allowed: {', '.join(sorted(set(allowed)))}"
            )
        out[target] = value
    return out


def _maybe_weight(graph: CSRGraph, context: LoadContext) -> CSRGraph:
    if context.weighted and not graph.is_weighted:
        # Mirrors datasets._get_dataset: weights are seeded off seed+1.
        return graph.with_random_weights(seed=context.seed + 1)
    return graph


# ---------------------------------------------------------------------------
# built-in sources: named datasets
# ---------------------------------------------------------------------------


def _register_datasets() -> None:
    from repro.graph import datasets

    def make_loader(dataset_name: str):
        def loader(rest: str, context: LoadContext) -> CSRGraph:
            if rest:
                raise GraphError(
                    f"dataset spec {dataset_name!r} takes no parameters, got {rest!r}"
                )
            return datasets._get_dataset(
                dataset_name, scale=context.scale, seed=context.seed,
                weighted=context.weighted,
            )

        return loader

    for name in datasets.ALL_DATASETS:
        spec = datasets.dataset_spec(name)
        register_source(name, f"synthetic stand-in: {spec.description}")(
            make_loader(name)
        )


# ---------------------------------------------------------------------------
# built-in sources: parameterized generators
# ---------------------------------------------------------------------------

_GENERATOR_TABLE = {
    "rmat": (
        "R-MAT/Graph500 generator (scale=..., ef=..., a/b/c, seed)",
        {"scale": "scale", "ef": "edge_factor", "edge_factor": "edge_factor",
         "a": "a", "b": "b", "c": "c", "seed": "seed", "name": "name",
         "deduplicate": "deduplicate"},
        ("scale",),
    ),
    "chung-lu": (
        "Chung-Lu power-law generator (n=..., deg=..., exponent, seed)",
        {"n": "num_vertices", "deg": "average_degree",
         "exponent": "exponent", "seed": "seed", "name": "name",
         "deduplicate": "deduplicate"},
        ("num_vertices", "average_degree"),
    ),
    "low-skew": (
        "low-skew (Friendster-like) generator (n=..., deg=..., seed)",
        {"n": "num_vertices", "deg": "average_degree", "seed": "seed",
         "name": "name"},
        ("num_vertices", "average_degree"),
    ),
    "uniform": (
        "uniform random (no-skew) generator (n=..., deg=..., seed)",
        {"n": "num_vertices", "deg": "average_degree", "seed": "seed",
         "name": "name"},
        ("num_vertices", "average_degree"),
    ),
    "community": (
        "planted-community power-law generator (communities=..., size=...)",
        {"communities": "num_communities", "size": "community_size",
         "intra": "intra_degree", "inter": "inter_degree",
         "exponent": "exponent", "seed": "seed", "name": "name"},
        ("num_communities", "community_size"),
    ),
}


def _canonical_kwargs(rest: str, head: str) -> str:
    kwargs = parse_spec_kwargs(rest, head)
    return ",".join(f"{key}={kwargs[key]}" for key in sorted(kwargs))


def _register_generators() -> None:
    from repro.graph import generators

    impls = {
        "rmat": generators._rmat_graph,
        "chung-lu": generators._chung_lu_graph,
        "low-skew": generators._low_skew_graph,
        "uniform": generators._uniform_random_graph,
        "community": generators._planted_community_graph,
    }

    def make_loader(head: str):
        description, aliases, required = _GENERATOR_TABLE[head]
        impl = impls[head]

        def loader(rest: str, context: LoadContext) -> CSRGraph:
            kwargs = _take_kwargs(parse_spec_kwargs(rest, head), aliases, head)
            kwargs.setdefault("seed", context.seed)
            missing = [key for key in required if key not in kwargs]
            if missing:
                raise GraphError(
                    f"graph spec head {head!r} requires {', '.join(missing)} "
                    f"(got {rest!r})"
                )
            return _maybe_weight(impl(**kwargs), context)

        return loader

    for head in _GENERATOR_TABLE:
        register_source(
            head, _GENERATOR_TABLE[head][0],
            canonicalize=lambda rest, head=head: _canonical_kwargs(rest, head),
        )(make_loader(head))


# ---------------------------------------------------------------------------
# built-in sources: on-disk graphs
# ---------------------------------------------------------------------------


def _split_file_rest(rest: str, head: str) -> Tuple[Path, Dict[str, object]]:
    if not rest:
        raise GraphError(f"graph spec head {head!r} requires a path, e.g. {head}:graph.txt")
    path_text, _, option_text = rest.partition("?")
    if not path_text.strip():
        raise GraphError(f"graph spec {head}:{rest!r} has an empty path")
    return Path(path_text.strip()), parse_spec_kwargs(option_text, head)


_FILE_OPTION_ALIASES = {
    "densify": "densify",
    "self_loops": "remove_self_loops",
    "remove_self_loops": "remove_self_loops",
    "n": "num_vertices",
    "num_vertices": "num_vertices",
    "name": "name",
}


def _canonical_file_rest(rest: str, head: str) -> str:
    from repro.graph.ingest import file_digest

    path, options = _split_file_rest(rest, head)
    digest = file_digest(path)[:CANONICAL_DIGEST_CHARS]
    canonical = f"{path.name}@sha256:{digest}"
    if options:
        suffix = ",".join(f"{key}={options[key]}" for key in sorted(options))
        canonical = f"{canonical}?{suffix}"
    return canonical


def _make_file_loader(head: str, fmt: Optional[str]):
    def loader(rest: str, context: LoadContext) -> CSRGraph:
        from repro.graph.ingest import ingest_graph

        path, raw_options = _split_file_rest(rest, head)
        options = _take_kwargs(raw_options, _FILE_OPTION_ALIASES, head)
        name = options.pop("name", None)
        graph = ingest_graph(
            path, fmt=fmt, mmap=context.mmap, cache_root=context.cache_root,
            name=name, **options,
        )
        return _maybe_weight(graph, context)

    return loader


def _register_files() -> None:
    for head, fmt, description in (
        ("file", None, "on-disk edge list / SNAP file (format sniffed; gzip ok)"),
        ("snap", "edgelist", "on-disk SNAP / whitespace edge list (gzip ok)"),
        ("mtx", "mtx", "on-disk Matrix-Market coordinate file (gzip ok)"),
    ):
        register_source(
            head, description,
            canonicalize=lambda rest, head=head: _canonical_file_rest(rest, head),
        )(_make_file_loader(head, fmt))

    def npz_loader(rest: str, context: LoadContext) -> CSRGraph:
        from repro.graph.io import _load_npz

        path, options = _split_file_rest(rest, "npz")
        if options:
            raise GraphError(f"npz specs take no options, got {rest!r}")
        return _maybe_weight(_load_npz(path), context)

    register_source(
        "npz", "compressed NumPy graph archive written by repro.graph.save",
        canonicalize=lambda rest: _canonical_file_rest(rest, "npz"),
    )(npz_loader)


_register_datasets()
_register_generators()
_register_files()


# ---------------------------------------------------------------------------
# saving
# ---------------------------------------------------------------------------


def save(graph: CSRGraph, path: PathLike, fmt: Optional[str] = None) -> None:
    """Write a graph to disk; the format follows the suffix unless forced.

    ``.npz`` → compressed NumPy archive, ``.mtx`` → Matrix-Market, anything
    else → whitespace edge list (the vectorized writer).
    """
    from repro.graph import ingest, io

    path = Path(path)
    if fmt is None:
        suffixes = [s.lower() for s in path.suffixes]
        if ".npz" in suffixes:
            fmt = "npz"
        elif ".mtx" in suffixes:
            fmt = "mtx"
        else:
            fmt = "edgelist"
    if fmt == "npz":
        io._save_npz(graph, path)
    elif fmt == "mtx":
        ingest.save_matrix_market(graph, path)
    elif fmt in ("edgelist", "snap", "el"):
        io._save_edge_list(graph, path)
    else:
        raise GraphError(f"unknown save format {fmt!r}; expected npz, mtx or edgelist")


def describe_spec(spec: str) -> Dict[str, object]:
    """Human-oriented description of a spec (used by ``repro graph info``)."""
    source, rest = _resolve(spec)
    info: Dict[str, object] = {
        "spec": spec.strip(),
        "head": source.head,
        "description": source.description,
    }
    try:
        info["canonical"] = canonical_spec(spec)
    except GraphError as error:
        info["canonical_error"] = str(error)
    return info


__all__ = [
    "CANONICAL_DIGEST_CHARS",
    "GraphSource",
    "LoadContext",
    "canonical_spec",
    "describe_spec",
    "list_sources",
    "load",
    "load_for_experiment",
    "parse_spec_kwargs",
    "register_source",
    "save",
    "split_spec",
]
