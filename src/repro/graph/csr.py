"""Compressed Sparse Row (CSR) graph representation.

The paper (Sec. II-B) describes graphs stored in CSR form: a *Vertex Array*
of indices into an *Edge Array* of neighbour IDs.  Pull-based computations
traverse the in-edge CSR while push-based computations traverse the out-edge
CSR.  :class:`CSRGraph` keeps both directions so that the analytics framework
can switch between pull and push per iteration, as Ligra does.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Tuple

import numpy as np

VERTEX_DTYPE = np.int64
INDEX_DTYPE = np.int64
WEIGHT_DTYPE = np.float64


class GraphError(ValueError):
    """Raised when a graph is structurally invalid."""


@dataclass
class CSRGraph:
    """A directed graph in Compressed Sparse Row form.

    Attributes
    ----------
    out_index:
        ``int64[num_vertices + 1]`` — ``out_index[v]:out_index[v+1]`` is the
        slice of ``out_targets`` holding the out-neighbours of ``v``.
    out_targets:
        ``int64[num_edges]`` — destination vertex of every out-edge, grouped
        by source.
    in_index, in_sources:
        The transpose adjacency (in-edges grouped by destination).
    out_weights, in_weights:
        Optional edge weights aligned with ``out_targets`` / ``in_sources``.
    validate_edges:
        Init-only flag.  ``False`` skips the O(E) range scan over the edge
        arrays (the cheap O(1) shape checks still run); used by trusted
        loaders — most notably the binary-CSR cache of
        :mod:`repro.graph.ingest`, whose entries were validated when built
        and whose memmap-backed arrays should not be paged in just to
        recompute a min/max.
    """

    out_index: np.ndarray
    out_targets: np.ndarray
    in_index: np.ndarray
    in_sources: np.ndarray
    out_weights: Optional[np.ndarray] = None
    in_weights: Optional[np.ndarray] = None
    name: str = field(default="graph")
    validate_edges: InitVar[bool] = True

    # -- construction helpers -------------------------------------------------

    def __post_init__(self, validate_edges: bool = True) -> None:
        # asanyarray (not asarray) so np.memmap-backed arrays keep their
        # memmap identity: graphs larger than RAM stay lazily paged.
        self.out_index = np.asanyarray(self.out_index, dtype=INDEX_DTYPE)
        self.in_index = np.asanyarray(self.in_index, dtype=INDEX_DTYPE)
        self.out_targets = np.asanyarray(self.out_targets, dtype=VERTEX_DTYPE)
        self.in_sources = np.asanyarray(self.in_sources, dtype=VERTEX_DTYPE)
        if self.out_weights is not None:
            self.out_weights = np.asanyarray(self.out_weights, dtype=WEIGHT_DTYPE)
        if self.in_weights is not None:
            self.in_weights = np.asanyarray(self.in_weights, dtype=WEIGHT_DTYPE)
        self.validate(scan_edges=validate_edges)

    # -- basic properties ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return int(self.out_index.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the graph."""
        return int(self.out_targets.shape[0])

    @property
    def is_weighted(self) -> bool:
        """Whether edge weights are attached."""
        return self.out_weights is not None

    @property
    def is_mmap(self) -> bool:
        """Whether the edge arrays are memory-mapped (see :class:`MmapCSRGraph`)."""
        return False

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array."""
        return np.diff(self.out_index)

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as an ``int64`` array."""
        return np.diff(self.in_index)

    @property
    def average_degree(self) -> float:
        """Average out-degree (== average in-degree)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # -- adjacency access ------------------------------------------------------

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Return the out-neighbours of ``vertex``."""
        return self.out_targets[self.out_index[vertex] : self.out_index[vertex + 1]]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Return the in-neighbours of ``vertex``."""
        return self.in_sources[self.in_index[vertex] : self.in_index[vertex + 1]]

    def out_edge_weights(self, vertex: int) -> np.ndarray:
        """Return the weights of the out-edges of ``vertex``."""
        if self.out_weights is None:
            raise GraphError("graph has no edge weights")
        return self.out_weights[self.out_index[vertex] : self.out_index[vertex + 1]]

    def in_edge_weights(self, vertex: int) -> np.ndarray:
        """Return the weights of the in-edges of ``vertex``."""
        if self.in_weights is None:
            raise GraphError("graph has no edge weights")
        return self.in_weights[self.in_index[vertex] : self.in_index[vertex + 1]]

    def out_degree(self, vertex: int) -> int:
        """Out-degree of a single vertex."""
        return int(self.out_index[vertex + 1] - self.out_index[vertex])

    def in_degree(self, vertex: int) -> int:
        """In-degree of a single vertex."""
        return int(self.in_index[vertex + 1] - self.in_index[vertex])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(source, destination)`` pairs."""
        sources, targets = self.edge_arrays()
        for s, t in zip(sources.tolist(), targets.tolist()):
            yield s, t

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return parallel ``(sources, targets)`` arrays for all edges."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.out_degrees)
        return sources, self.out_targets.copy()

    # -- transformations -------------------------------------------------------

    def relabel(self, permutation: np.ndarray, name: Optional[str] = None) -> "CSRGraph":
        """Return a new graph with vertex ``v`` renamed to ``permutation[v]``.

        ``permutation`` must be a bijection over ``range(num_vertices)``.
        Relabelling is how vertex-reordering techniques (Sort, HubSort, DBG,
        Gorder) are applied to a graph.
        """
        permutation = np.asarray(permutation, dtype=VERTEX_DTYPE)
        if permutation.shape != (self.num_vertices,):
            raise GraphError(
                f"permutation has shape {permutation.shape}, "
                f"expected ({self.num_vertices},)"
            )
        check = np.zeros(self.num_vertices, dtype=bool)
        check[permutation] = True
        if not check.all():
            raise GraphError("permutation is not a bijection over the vertex set")

        from repro.graph.builder import _build_csr

        sources, targets = self.edge_arrays()
        new_sources = permutation[sources]
        new_targets = permutation[targets]
        weights = self.out_weights.copy() if self.out_weights is not None else None
        return _build_csr(
            self.num_vertices,
            new_sources,
            new_targets,
            weights=weights,
            name=name or self.name,
        )

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph (all edges flipped)."""
        return CSRGraph(
            out_index=self.in_index.copy(),
            out_targets=self.in_sources.copy(),
            in_index=self.out_index.copy(),
            in_sources=self.out_targets.copy(),
            out_weights=None if self.in_weights is None else self.in_weights.copy(),
            in_weights=None if self.out_weights is None else self.out_weights.copy(),
            name=f"{self.name}-reversed",
        )

    def with_random_weights(self, low: int = 1, high: int = 64, seed: int = 0) -> "CSRGraph":
        """Return a copy with uniformly random integer edge weights.

        Used for SSSP, which the paper runs on weighted graphs.  The same
        logical edge gets the same weight in the out- and in-adjacency.
        """
        rng = np.random.default_rng(seed)
        out_weights = rng.integers(low, high + 1, size=self.num_edges).astype(WEIGHT_DTYPE)

        # Mirror the weights onto the in-adjacency: build the in-CSR edge
        # ordering exactly the way build_csr does and carry weights along.
        sources, targets = self.edge_arrays()
        order = np.lexsort((sources, targets))
        in_weights = out_weights[order]
        return CSRGraph(
            out_index=self.out_index.copy(),
            out_targets=self.out_targets.copy(),
            in_index=self.in_index.copy(),
            in_sources=self.in_sources.copy(),
            out_weights=out_weights,
            in_weights=in_weights,
            name=self.name,
        )

    # -- validation ------------------------------------------------------------

    def validate(self, scan_edges: bool = True) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure.

        ``scan_edges=False`` skips the checks that read every edge (vertex-ID
        range scans and index monotonicity) and keeps only the O(1) shape and
        endpoint checks; trusted loaders use it to avoid paging in an entire
        memmap-backed graph.
        """
        if self.out_index.ndim != 1 or self.in_index.ndim != 1:
            raise GraphError("index arrays must be one-dimensional")
        if self.out_index.shape[0] != self.in_index.shape[0]:
            raise GraphError("out_index and in_index imply different vertex counts")
        if self.out_index.shape[0] < 1:
            raise GraphError("index arrays must have at least one entry")
        if self.out_index[0] != 0 or self.in_index[0] != 0:
            raise GraphError("index arrays must start at 0")
        if self.out_targets.shape[0] != self.in_sources.shape[0]:
            raise GraphError("out- and in-edge arrays disagree on edge count")
        if self.out_index[-1] != self.out_targets.shape[0]:
            raise GraphError("out_index does not terminate at num_edges")
        if self.in_index[-1] != self.in_sources.shape[0]:
            raise GraphError("in_index does not terminate at num_edges")
        if scan_edges:
            if np.any(np.diff(self.out_index) < 0) or np.any(np.diff(self.in_index) < 0):
                raise GraphError("index arrays must be non-decreasing")
            n = self.num_vertices
            if self.num_edges:
                if self.out_targets.min() < 0 or self.out_targets.max() >= n:
                    raise GraphError("out_targets contains vertex IDs out of range")
                if self.in_sources.min() < 0 or self.in_sources.max() >= n:
                    raise GraphError("in_sources contains vertex IDs out of range")
        for weights, edge_array, label in (
            (self.out_weights, self.out_targets, "out_weights"),
            (self.in_weights, self.in_sources, "in_weights"),
        ):
            if weights is not None and weights.shape != edge_array.shape:
                raise GraphError(f"{label} is not aligned with its edge array")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, weighted={self.is_weighted})"
        )


@dataclass
class MmapCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose arrays are ``np.memmap``-backed.

    Instances are produced by the binary-CSR disk cache
    (:class:`repro.graph.ingest.CSRBinaryCache`): the ``indptr`` / ``indices``
    / ``weights`` arrays are opened with ``np.load(..., mmap_mode="r")`` so a
    graph larger than RAM is paged in lazily as the trace pipeline slices it.
    Everything that consumes a :class:`CSRGraph` — the analytics framework,
    the reordering stack, trace generation, :mod:`repro.graph.properties` —
    works against either backing unchanged; transformations that materialize
    new arrays (``relabel``, ``reverse``, ``with_random_weights``) return
    plain in-RAM graphs.

    The backing directory's entry was validated when the cache wrote it, so
    construction skips the O(E) edge-range scan by default (it would fault in
    the whole mapping).
    """

    backing_dir: Optional[Path] = None

    @property
    def is_mmap(self) -> bool:
        """Whether the edge arrays are memory-mapped (always true here)."""
        return True

    def materialize(self, name: Optional[str] = None) -> CSRGraph:
        """Copy the graph into plain in-RAM arrays."""
        return CSRGraph(
            out_index=np.array(self.out_index),
            out_targets=np.array(self.out_targets),
            in_index=np.array(self.in_index),
            in_sources=np.array(self.in_sources),
            out_weights=None if self.out_weights is None else np.array(self.out_weights),
            in_weights=None if self.in_weights is None else np.array(self.in_weights),
            name=name or self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MmapCSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, weighted={self.is_weighted}, "
            f"backing_dir={str(self.backing_dir)!r})"
        )
