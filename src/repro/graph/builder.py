"""Construction of :class:`~repro.graph.csr.CSRGraph` objects from edge lists.

The public :func:`build_csr` / :func:`from_edge_list` entry points are
deprecated in favour of :func:`repro.graph.load` (``"edges:..."`` specs go
through the same code); internal callers use the private ``_build_csr``.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import INDEX_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE, CSRGraph, GraphError


def _csr_from_pairs(
    num_vertices: int,
    group_by: np.ndarray,
    other: np.ndarray,
    weights: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Group edges by ``group_by`` and return (index, adjacency, weights)."""
    counts = np.bincount(group_by, minlength=num_vertices).astype(INDEX_DTYPE)
    index = np.concatenate(([0], np.cumsum(counts))).astype(INDEX_DTYPE)
    # Stable lexicographic order: primary key = grouping vertex, secondary key
    # = the opposite endpoint, so neighbour lists come out sorted.
    order = np.lexsort((other, group_by))
    adjacency = other[order].astype(VERTEX_DTYPE)
    ordered_weights = weights[order].astype(WEIGHT_DTYPE) if weights is not None else None
    return index, adjacency, ordered_weights


def _build_csr(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
    remove_self_loops: bool = False,
    deduplicate: bool = False,
    name: str = "graph",
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel source/target arrays.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex IDs must lie in ``[0, num_vertices)``.
    sources, targets:
        Parallel arrays of edge endpoints.
    weights:
        Optional parallel array of edge weights.
    remove_self_loops:
        Drop edges whose endpoints coincide.
    deduplicate:
        Collapse parallel edges (the first weight wins for weighted graphs).
    name:
        Human-readable graph name carried through transformations.
    """
    sources = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    targets = np.asarray(targets, dtype=VERTEX_DTYPE).ravel()
    if sources.shape != targets.shape:
        raise GraphError("sources and targets must have the same length")
    if weights is not None:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if weights.shape != sources.shape:
            raise GraphError("weights must be aligned with the edge list")
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    if sources.size:
        if sources.min() < 0 or targets.min() < 0:
            raise GraphError("vertex IDs must be non-negative")
        if max(int(sources.max()), int(targets.max())) >= num_vertices:
            raise GraphError("edge list references vertex IDs >= num_vertices")

    if remove_self_loops and sources.size:
        keep = sources != targets
        sources, targets = sources[keep], targets[keep]
        if weights is not None:
            weights = weights[keep]

    if deduplicate and sources.size:
        keys = sources * np.int64(num_vertices) + targets
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx.sort()
        sources, targets = sources[unique_idx], targets[unique_idx]
        if weights is not None:
            weights = weights[unique_idx]

    out_index, out_targets, out_weights = _csr_from_pairs(num_vertices, sources, targets, weights)
    in_index, in_sources, in_weights = _csr_from_pairs(num_vertices, targets, sources, weights)
    return CSRGraph(
        out_index=out_index,
        out_targets=out_targets,
        in_index=in_index,
        in_sources=in_sources,
        out_weights=out_weights,
        in_weights=in_weights,
        name=name,
    )


def _from_edge_list(
    edges: Iterable[Sequence[int]],
    num_vertices: Optional[int] = None,
    weights: Optional[Sequence[float]] = None,
    name: str = "graph",
    **kwargs,
) -> CSRGraph:
    edge_array = np.asarray(list(edges), dtype=VERTEX_DTYPE)
    if edge_array.size == 0:
        sources = np.empty(0, dtype=VERTEX_DTYPE)
        targets = np.empty(0, dtype=VERTEX_DTYPE)
    else:
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be (source, target) pairs")
        sources, targets = edge_array[:, 0], edge_array[:, 1]
    if num_vertices is None:
        num_vertices = int(edge_array.max()) + 1 if edge_array.size else 0
    weight_array = None if weights is None else np.asarray(weights, dtype=WEIGHT_DTYPE)
    return _build_csr(num_vertices, sources, targets, weights=weight_array, name=name, **kwargs)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def build_csr(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
    remove_self_loops: bool = False,
    deduplicate: bool = False,
    name: str = "graph",
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel source/target arrays.

    .. deprecated:: use :func:`repro.graph.load` (or keep raw arrays out of
       application code entirely); this wrapper forwards to the same builder.
    """
    _deprecated("repro.graph.builder.build_csr", "repro.graph.load")
    return _build_csr(
        num_vertices,
        sources,
        targets,
        weights=weights,
        remove_self_loops=remove_self_loops,
        deduplicate=deduplicate,
        name=name,
    )


def from_edge_list(
    edges: Iterable[Sequence[int]],
    num_vertices: Optional[int] = None,
    weights: Optional[Sequence[float]] = None,
    name: str = "graph",
    **kwargs,
) -> CSRGraph:
    """Build a graph from an iterable of ``(source, target)`` pairs.

    ``num_vertices`` defaults to one more than the largest vertex ID seen.

    .. deprecated:: use :func:`repro.graph.load` instead.
    """
    _deprecated("repro.graph.builder.from_edge_list", "repro.graph.load")
    return _from_edge_list(edges, num_vertices=num_vertices, weights=weights, name=name, **kwargs)
