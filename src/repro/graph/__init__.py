"""Graph substrate: CSR representation, acquisition, ingestion and analysis.

This subpackage provides everything the rest of the library needs to model
the graph datasets the paper evaluates on:

* :class:`~repro.graph.csr.CSRGraph` — Compressed Sparse Row graph with both
  out- and in-adjacency, optional edge weights, and relabelling support;
  :class:`~repro.graph.csr.MmapCSRGraph` is the ``np.memmap``-backed variant
  for graphs larger than RAM.
* :func:`~repro.graph.source.load` — the unified acquisition entry point:
  ``load("lj")``, ``load("rmat:scale=18,seed=7")``,
  ``load("file:web-Google.txt.gz")``, ``load("mtx:graph.mtx")``.
* :mod:`~repro.graph.ingest` — chunked parsers for real-world graph files,
  the binary-CSR on-disk cache, out-of-core CSR construction and dataset
  download/verify tooling.
* :mod:`~repro.graph.properties` — degree/skew analysis used to reproduce
  Table I.

The older per-mechanism entry points (:mod:`~repro.graph.generators`
functions, :func:`~repro.graph.datasets.get_dataset`,
:mod:`~repro.graph.io` load/save, raw :func:`~repro.graph.builder.build_csr`)
remain importable as deprecated wrappers around the same implementations.
"""

from repro.graph.builder import build_csr, from_edge_list
from repro.graph.csr import CSRGraph, GraphError, MmapCSRGraph
from repro.graph.datasets import DatasetSpec, get_dataset, list_datasets
from repro.graph.generators import (
    chung_lu_graph,
    low_skew_graph,
    rmat_graph,
    uniform_random_graph,
)
from repro.graph.ingest import fetch_dataset, ingest_graph, verify_file
from repro.graph.properties import (
    DegreeStatistics,
    SkewProfile,
    SkewReport,
    degree_statistics,
    edge_coverage,
    hot_vertex_mask,
    skew_report,
)
from repro.graph.source import (
    GraphSource,
    LoadContext,
    canonical_spec,
    describe_spec,
    list_sources,
    load,
    load_for_experiment,
    register_source,
    save,
)

__all__ = [
    "CSRGraph",
    "DatasetSpec",
    "DegreeStatistics",
    "GraphError",
    "GraphSource",
    "LoadContext",
    "MmapCSRGraph",
    "SkewProfile",
    "SkewReport",
    "build_csr",
    "canonical_spec",
    "chung_lu_graph",
    "degree_statistics",
    "describe_spec",
    "edge_coverage",
    "fetch_dataset",
    "from_edge_list",
    "get_dataset",
    "hot_vertex_mask",
    "ingest_graph",
    "list_datasets",
    "list_sources",
    "load",
    "load_for_experiment",
    "low_skew_graph",
    "register_source",
    "rmat_graph",
    "save",
    "skew_report",
    "uniform_random_graph",
    "verify_file",
]
