"""Graph substrate: CSR representation, builders, generators and analysis.

This subpackage provides everything the rest of the library needs to model
the graph datasets the paper evaluates on:

* :class:`~repro.graph.csr.CSRGraph` — Compressed Sparse Row graph with both
  out- and in-adjacency, optional edge weights, and relabelling support.
* :mod:`~repro.graph.builder` — construction of CSR graphs from edge lists.
* :mod:`~repro.graph.generators` — synthetic power-law (Chung-Lu), R-MAT,
  low-skew and uniform random graph generators that stand in for the paper's
  real datasets.
* :mod:`~repro.graph.datasets` — a registry of named, scaled-down datasets
  mirroring the paper's Table V.
* :mod:`~repro.graph.properties` — degree/skew analysis used to reproduce
  Table I.
* :mod:`~repro.graph.io` — edge-list and binary persistence.
"""

from repro.graph.builder import build_csr, from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DatasetSpec, get_dataset, list_datasets
from repro.graph.generators import (
    chung_lu_graph,
    low_skew_graph,
    rmat_graph,
    uniform_random_graph,
)
from repro.graph.properties import (
    DegreeStatistics,
    SkewReport,
    degree_statistics,
    edge_coverage,
    hot_vertex_mask,
    skew_report,
)

__all__ = [
    "CSRGraph",
    "DatasetSpec",
    "DegreeStatistics",
    "SkewReport",
    "build_csr",
    "chung_lu_graph",
    "degree_statistics",
    "edge_coverage",
    "from_edge_list",
    "get_dataset",
    "hot_vertex_mask",
    "list_datasets",
    "low_skew_graph",
    "rmat_graph",
    "skew_report",
    "uniform_random_graph",
]
