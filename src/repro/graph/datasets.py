"""Registry of named, scaled-down datasets mirroring the paper's Table V.

The paper evaluates on seven datasets::

    LiveJournal (lj)   5M vertices    68M edges   avg degree 14   high skew
    PLD (pl)          43M vertices   623M edges   avg degree 15   high skew
    Twitter (tw)      62M vertices 1,468M edges   avg degree 24   high skew
    Kron (kr)         67M vertices 1,323M edges   avg degree 20   high skew
    SD1-ARC (sd)      95M vertices 1,937M edges   avg degree 20   high skew
    Friendster (fr)   64M vertices 2,147M edges   avg degree 33   low skew
    Uniform (uni)     50M vertices 1,000M edges   avg degree 20   no skew

Real datasets are not redistributable and far exceed what a trace-driven
Python simulator can process, so each name maps to a synthetic generator that
preserves the dataset's *class* (skew level, generator family and average
degree) at a configurable scale.  Relative vertex counts across datasets are
preserved so that, as in the paper, the larger datasets thrash the LLC harder.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    _chung_lu_graph,
    _low_skew_graph,
    _rmat_graph,
    _uniform_random_graph,
)

#: Datasets used in the paper's main evaluation (high skew).
HIGH_SKEW_DATASETS = ("lj", "pl", "tw", "kr", "sd")
#: Adversarial datasets (low / no skew) used in the robustness study (Fig. 9).
ADVERSARIAL_DATASETS = ("fr", "uni")
#: All datasets, in the paper's presentation order.
ALL_DATASETS = HIGH_SKEW_DATASETS + ADVERSARIAL_DATASETS


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic dataset.

    Attributes
    ----------
    name:
        Short name matching the paper (``lj``, ``pl``, ...).
    description:
        The real dataset this stands in for.
    base_vertices:
        Vertex count at ``scale=1.0`` — chosen so relative sizes across
        datasets match the paper's Table V.
    average_degree:
        Target average degree, matching Table V.
    skew:
        ``"high"``, ``"low"`` or ``"none"``.
    build:
        Callable ``(num_vertices, average_degree, seed) -> CSRGraph``.
    """

    name: str
    description: str
    base_vertices: int
    average_degree: float
    skew: str
    build: Callable[[int, float, int], CSRGraph]


def _build_lj(n: int, degree: float, seed: int) -> CSRGraph:
    return _chung_lu_graph(n, degree, exponent=2.0, seed=seed, name="lj", deduplicate=False)


def _build_pl(n: int, degree: float, seed: int) -> CSRGraph:
    return _chung_lu_graph(n, degree, exponent=1.92, seed=seed, name="pl", deduplicate=False)


def _build_tw(n: int, degree: float, seed: int) -> CSRGraph:
    return _chung_lu_graph(n, degree, exponent=1.9, seed=seed, name="tw", deduplicate=False)


def _build_kr(n: int, degree: float, seed: int) -> CSRGraph:
    # Kron is generated with R-MAT/Graph500 parameters in the paper.  The
    # vertex count is rounded to the nearest power of two, as R-MAT requires.
    scale = max(1, int(round(np.log2(max(2, n)))))
    return _rmat_graph(scale, edge_factor=degree, seed=seed, name="kr")


def _build_sd(n: int, degree: float, seed: int) -> CSRGraph:
    return _chung_lu_graph(n, degree, exponent=1.85, seed=seed, name="sd", deduplicate=False)


def _build_fr(n: int, degree: float, seed: int) -> CSRGraph:
    return _low_skew_graph(n, degree, seed=seed, name="fr")


def _build_uni(n: int, degree: float, seed: int) -> CSRGraph:
    return _uniform_random_graph(n, degree, seed=seed, name="uni")


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("lj", "LiveJournal social network", 6_000, 14.0, "high", _build_lj),
        DatasetSpec("pl", "PLD hyperlink graph", 10_000, 15.0, "high", _build_pl),
        DatasetSpec("tw", "Twitter follower graph", 14_000, 24.0, "high", _build_tw),
        DatasetSpec("kr", "Kron (Graph500 R-MAT)", 16_384, 20.0, "high", _build_kr),
        DatasetSpec("sd", "SD1-ARC web crawl", 20_000, 20.0, "high", _build_sd),
        DatasetSpec("fr", "Friendster social network (low skew)", 14_000, 33.0, "low", _build_fr),
        DatasetSpec("uni", "Uniform random graph (no skew)", 12_000, 20.0, "none", _build_uni),
    )
}


def list_datasets(skew: Optional[str] = None) -> List[str]:
    """Return the registered dataset names, optionally filtered by skew class."""
    names = [name for name in ALL_DATASETS if name in _REGISTRY]
    if skew is None:
        return names
    return [name for name in names if _REGISTRY[name].skew == skew]


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for a dataset name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _get_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 42,
    weighted: bool = False,
) -> CSRGraph:
    """Instantiate a named dataset.

    Parameters
    ----------
    name:
        One of the names in :func:`list_datasets`.
    scale:
        Multiplier on the base vertex count.  ``scale=1.0`` is the default
        experiment size; benchmarks use smaller scales to keep runtimes low.
    seed:
        RNG seed (the same seed always yields the same graph).
    weighted:
        Attach uniformly random integer edge weights (needed by SSSP).
    """
    spec = dataset_spec(name)
    if scale <= 0:
        raise ValueError("scale must be positive")
    num_vertices = max(16, int(round(spec.base_vertices * scale)))
    graph = spec.build(num_vertices, spec.average_degree, seed)
    if weighted:
        graph = graph.with_random_weights(seed=seed + 1)
    return graph


def get_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 42,
    weighted: bool = False,
) -> CSRGraph:
    """Instantiate a named dataset.

    .. deprecated:: use ``repro.graph.load("lj")`` (etc.) instead.
    """
    warnings.warn(
        'repro.graph.datasets.get_dataset is deprecated; use repro.graph.load("<name>") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return _get_dataset(name, scale=scale, seed=seed, weighted=weighted)
