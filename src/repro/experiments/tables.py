"""Table experiments: Table I (skew), Table IV (array merging), Table VII (LLC sweep)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    simulate_scheme,
    build_workload,
    llc_trace_for,
    simulate_llc_policy,
    workload_cycles,
)
from repro.experiments.schemes import scheme_policy
from repro.graph.source import load_for_experiment
from repro.graph.properties import skew_report


def table1_skew(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Sequence[str]] = None,
    extended: bool = False,
) -> List[Dict[str, object]]:
    """Table I: percentage of hot vertices and of edges they cover, per dataset.

    Dataset entries may be any ``repro.graph.load`` spec, so the table can be
    produced for real on-disk graphs (``"file:web-Google.txt.gz"``) next to
    the synthetic stand-ins.  ``extended=True`` adds the skew-profile columns
    (Gini coefficient, degree percentiles, tail coverage) beyond the paper's
    Table I.
    """
    config = config or ExperimentConfig.default()
    names = datasets or config.high_skew_datasets
    rows = []
    for name in names:
        graph = load_for_experiment(
            name, scale=config.scale, seed=config.seed, weighted=False,
            cache_root=config.graph_cache_dir,
        )
        rows.append(skew_report(graph, extended=extended).as_dict())
    return rows


def table4_merging(
    config: Optional[ExperimentConfig] = None,
    apps: Optional[Sequence[str]] = None,
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Table IV: speed-up from merging the Property Arrays.

    For every application with more than one edge-indexed Property Array the
    merged layout is compared against the unmerged one under the RRIP
    baseline; applications without a merging opportunity (BC, Radii) report
    zero speed-up, as in the paper.
    """
    config = config or ExperimentConfig.default()
    apps = apps or config.apps
    datasets = datasets or config.high_skew_datasets
    rows: List[Dict[str, object]] = []
    for app_name in apps:
        speedups = []
        has_opportunity = None
        for dataset_name in datasets:
            unmerged = build_workload(
                app_name, dataset_name, reorder="identity", config=config, merged_properties=False
            )
            has_opportunity = unmerged.layout.profile.num_property_arrays > 1
            if not has_opportunity:
                break
            merged = build_workload(
                app_name, dataset_name, reorder="identity", config=config, merged_properties=True
            )
            unmerged_stats = simulate_llc_policy(
                llc_trace_for(unmerged, config), scheme_policy("RRIP"), config.hierarchy.llc
            )
            merged_stats = simulate_llc_policy(
                llc_trace_for(merged, config), scheme_policy("RRIP"), config.hierarchy.llc
            )
            unmerged_cycles = workload_cycles(unmerged, unmerged_stats, config)
            merged_cycles = workload_cycles(merged, merged_stats, config)
            speedups.append(config.timing.speedup_percent(unmerged_cycles, merged_cycles))
        if has_opportunity:
            rows.append(
                {
                    "app": app_name,
                    "merging_opportunity": "Yes",
                    "min_speedup_pct": round(min(speedups), 2),
                    "max_speedup_pct": round(max(speedups), 2),
                }
            )
        else:
            rows.append(
                {
                    "app": app_name,
                    "merging_opportunity": "No",
                    "min_speedup_pct": 0.0,
                    "max_speedup_pct": 0.0,
                }
            )
    return rows


def table7_llc_sweep(
    config: Optional[ExperimentConfig] = None,
    llc_sizes: Optional[Sequence[int]] = None,
    apps: Optional[Sequence[str]] = None,
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Table VII: misses eliminated over LRU for RRIP, GRASP and OPT vs LLC size.

    The paper sweeps 1-32 MB; the scaled reproduction sweeps the same 1/4× to
    2× range around the default LLC.
    """
    config = config or ExperimentConfig.default()
    apps = apps or config.apps
    datasets = datasets or config.high_skew_datasets
    default_llc = config.hierarchy.llc
    if llc_sizes is None:
        llc_sizes = [default_llc.size_bytes * factor // 4 for factor in (1, 2, 4, 8)]

    rows: List[Dict[str, object]] = []
    for size in llc_sizes:
        sweep_config = config.with_overrides(hierarchy=config.hierarchy.with_llc_size(size))
        reductions = {"RRIP": [], "GRASP": [], "OPT": []}
        for dataset_name in datasets:
            for app_name in apps:
                workload = build_workload(app_name, dataset_name, reorder=sweep_config.reorder, config=sweep_config)
                lru_stats = simulate_scheme(workload, "LRU", sweep_config)
                for scheme in ("RRIP", "GRASP", "OPT"):
                    stats = simulate_scheme(workload, scheme, sweep_config)
                    reductions[scheme].append(
                        sweep_config.timing.miss_reduction_percent(lru_stats.misses, stats.misses)
                    )
        row: Dict[str, object] = {"llc_bytes": size}
        for scheme, values in reductions.items():
            row[scheme] = round(sum(values) / len(values), 2) if values else 0.0
        rows.append(row)
    return rows
