"""Process-parallel experiment runner.

:func:`compare_policies_parallel` is a drop-in replacement for
:func:`repro.experiments.runner.compare_policies` that shards the independent
(app, dataset) pairs of a comparison across worker processes.  Each pair is a
self-contained unit of work — workload construction, L1/L2 filtering and every
scheme's LLC replay — so workers need no coordination beyond the optional
on-disk memo store (:mod:`repro.experiments.memo`), which is installed in
every worker so that

* shards of one invocation share built workloads and filtered traces with
  later invocations, and
* separate figure/table drivers (Figs. 5-11, Tables 1-7) reuse each other's
  runs across processes, exactly as the in-memory memo does within one.

Results are returned in the same (dataset, app, scheme) order as the serial
runner, with identical values: parallelism, like the vectorized backend, only
changes how fast the numbers are obtained.  When process pools are
unavailable (restricted sandboxes) or not worth it (a single pair), the
function transparently falls back to the serial path.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.memo import CACHE_DIR_ENV_VAR, DiskMemo, default_cache_dir
from repro.experiments.queue import POOL_BROKEN, FailureEvent, WorkerPoolBrokenWarning
from repro.experiments.runner import (
    DataPoint,
    compare_policies,
    compare_policies_streaming,
    set_disk_memo,
)
from repro.fastsim.dispatch import set_default_backend
from repro.fastsim.kernels import THREADS_ENV_VAR

#: Environment variable capping the worker count (0 or 1 forces serial).
WORKERS_ENV_VAR = "REPRO_WORKERS"

_PairTask = Tuple[
    str, str, Tuple[str, ...], ExperimentConfig, Optional[str], str, Optional[str], bool
]


def _init_worker(cache_dir: Optional[str], backend: Optional[str]) -> None:
    """Configure one worker process: disk memo plus simulation backend.

    Process-level parallelism takes precedence over the fused pipeline's
    set-shard threading: with one worker per core, letting every worker also
    spawn ``REPRO_THREADS`` filter threads would oversubscribe the machine,
    so workers run the fused kernels single-threaded (results are
    thread-count-invariant — this only affects scheduling).
    """
    os.environ[THREADS_ENV_VAR] = "1"
    if cache_dir:
        set_disk_memo(DiskMemo(Path(cache_dir)))
    if backend:
        set_default_backend(backend)


def _simulate_pair(task: _PairTask) -> List[DataPoint]:
    """Run all schemes of one (app, dataset) pair (executed in a worker)."""
    app_name, dataset_name, schemes, config, reorder, baseline, cache_dir, streaming = task
    if cache_dir:
        # Covers the fork start method, where _init_worker state is inherited
        # but a worker may be reused across pools with different cache dirs.
        set_disk_memo(DiskMemo(Path(cache_dir)))
    compare = compare_policies_streaming if streaming else compare_policies
    return compare(
        [app_name], [dataset_name], list(schemes), config=config, reorder=reorder, baseline=baseline
    )


def _worker_budget(num_pairs: int, max_workers: Optional[int]) -> int:
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            max_workers = os.cpu_count() or 1
    return max(0, min(max_workers, num_pairs))


def compare_policies_parallel(
    app_names: Sequence[str],
    dataset_names: Sequence[str],
    schemes: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reorder: Optional[str] = None,
    baseline: str = "RRIP",
    max_workers: Optional[int] = None,
    cache_dir: Optional[Path | str] = None,
    streaming: bool = False,
) -> List[DataPoint]:
    """Parallel :func:`~repro.experiments.runner.compare_policies`.

    Parameters mirror the serial function, plus:

    max_workers:
        Process count; defaults to ``REPRO_WORKERS`` or the CPU count,
        clamped to the number of (app, dataset) pairs.  Values below 2 run
        serially in-process.
    cache_dir:
        Root of the on-disk memo store shared by the workers (and installed
        in this process, so the parent reuses worker results on later calls).
        Defaults to ``REPRO_CACHE_DIR``; without either, workers still run in
        parallel but share nothing across invocations.
    streaming:
        Run the full-execution streaming comparison
        (:func:`~repro.experiments.runner.compare_policies_streaming`)
        instead of the one-shot ROI comparison.  Each worker's peak memory
        is bounded by the config's chunk budget, and with a shared
        ``cache_dir`` the workers' per-chunk LLC streams (``llcchunk`` /
        ``llcstream`` entries) are reused across schemes and invocations.
    """
    config = config or ExperimentConfig.default()
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if root is not None:
        set_disk_memo(DiskMemo(root))

    serial = compare_policies_streaming if streaming else compare_policies
    pairs = [(app, dataset) for dataset in dataset_names for app in app_names]
    workers = _worker_budget(len(pairs), max_workers)
    if workers < 2 or len(pairs) < 2:
        return serial(
            app_names, dataset_names, schemes, config=config, reorder=reorder, baseline=baseline
        )

    tasks: List[_PairTask] = [
        (app, dataset, tuple(schemes), config, reorder, baseline,
         str(root) if root is not None else None, streaming)
        for app, dataset in pairs
    ]
    failed_pair: Optional[Tuple[str, str]] = None
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(str(root) if root is not None else None, config.backend),
        ) as pool:
            # One future per pair (rather than pool.map) so that when the
            # pool dies we know exactly which pair's result was lost.
            futures = [pool.submit(_simulate_pair, task) for task in tasks]
            chunks = []
            for (app, dataset), future in zip(pairs, futures):
                failed_pair = (app, dataset)
                chunks.append(future.result())
            failed_pair = None
    except (OSError, BrokenProcessPool) as error:
        # Process pools can be unavailable (sandboxes) or die mid-flight; the
        # serial path always works and reuses whatever reached the memo.  The
        # fallback is *not* silent: the same structured FailureEvent the
        # sweep service records in its run manifest is surfaced as a warning
        # naming the pair whose result was lost.
        event = FailureEvent(
            kind=POOL_BROKEN,
            label=(
                f"{failed_pair[0]}/{failed_pair[1]}" if failed_pair is not None else "<pool start>"
            ),
            detail=f"{type(error).__name__}: {error}; falling back to the serial runner",
        )
        warnings.warn(WorkerPoolBrokenWarning(event), stacklevel=2)
        return serial(
            app_names, dataset_names, schemes, config=config, reorder=reorder, baseline=baseline
        )
    return [point for chunk in chunks for point in chunk]


__all__ = [
    "CACHE_DIR_ENV_VAR",
    "DiskMemo",
    "WORKERS_ENV_VAR",
    "WorkerPoolBrokenWarning",
    "compare_policies_parallel",
]
