"""On-disk memoisation of workloads, filtered traces and policy runs.

The in-memory memo tables in :mod:`repro.experiments.runner` only live for
one process; this module persists the same three kinds of artifacts so that
separate invocations (each figure/table benchmark, every worker of the
parallel runner) reuse each other's work:

``<root>/v2/workload/<sha256>.pkl``
    Built :class:`~repro.experiments.runner.Workload` objects, keyed by the
    in-memory workload memo key (app, dataset, reorder, scale, seed, merged).
``<root>/v2/llctrace/<sha256>.pkl``
    L1/L2-filtered :class:`~repro.experiments.runner.LLCTrace` streams, keyed
    by the workload key plus the cache hierarchy.
``<root>/v2/policy/<sha256>.pkl``
    Per-scheme :class:`~repro.cache.stats.CacheStats`, keyed by the trace key
    plus the scheme name.

Keys are hashed from their ``repr`` — every component is a primitive or a
frozen dataclass with a deterministic ``repr``.  Writes go through a
temporary file and ``os.replace`` so concurrent writers (the parallel
runner's worker processes) can never expose a partially-written entry; a
corrupt or unreadable entry is treated as a miss and recomputed.

The store is enabled by passing a ``cache_dir`` to the parallel runner or by
setting the ``REPRO_CACHE_DIR`` environment variable, in which case the
serial runner uses it too.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Optional

#: Environment variable naming the on-disk memo root directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Layout version; bump when any persisted type changes incompatibly *or*
#: when a simulation-semantics fix invalidates previously computed results
#: (v1 -> v2: the PIN policy-state bugfix — pinned insertions now feed the
#: DRRIP set duel and pin-on-hit refreshes the RRPV — changed PIN-X stats,
#: which v1 stores would otherwise keep serving).
MEMO_VERSION = 2


def default_cache_dir() -> Optional[Path]:
    """Cache root from ``REPRO_CACHE_DIR``, or ``None`` when unset."""
    value = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return Path(value) if value else None


class DiskMemo:
    """A pickle-per-entry store keyed by (kind, memo key)."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root) / f"v{MEMO_VERSION}"

    def path_for(self, kind: str, key: Any) -> Path:
        """File that does (or would) hold the entry for ``key``."""
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.root / kind / f"{digest}.pkl"

    def get(self, kind: str, key: Any) -> Optional[Any]:
        """Load an entry, or ``None`` on a miss or an unreadable file."""
        path = self.path_for(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt, truncated or stale entry (including pickles that
            # reference since-renamed classes): treat as a miss and let the
            # caller recompute and overwrite it.
            return None

    def put(self, kind: str, key: Any, value: Any) -> None:
        """Store an entry atomically (best effort: IO errors are swallowed)."""
        path = self.path_for(kind, key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def entry_count(self, kind: Optional[str] = None) -> int:
        """Number of persisted entries (of one kind, or overall)."""
        base = self.root / kind if kind else self.root
        if not base.exists():
            return 0
        return sum(1 for _ in base.rglob("*.pkl"))
