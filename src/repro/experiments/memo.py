"""On-disk memoisation of workloads, filtered traces and policy runs.

The in-memory memo tables in :mod:`repro.experiments.runner` only live for
one process; this module persists the same three kinds of artifacts so that
separate invocations (each figure/table benchmark, every worker of the
parallel runner) reuse each other's work:

``<root>/v3/workload/<sha256>.pkl``
    Built :class:`~repro.experiments.runner.Workload` objects, keyed by the
    in-memory workload memo key (app, dataset, reorder, scale, seed, merged).
``<root>/v3/llctrace/<sha256>.pkl``
    L1/L2-filtered :class:`~repro.experiments.runner.LLCTrace` streams, keyed
    by the workload key plus the cache hierarchy.
``<root>/v3/policy/<sha256>.pkl``
    Per-scheme :class:`~repro.cache.stats.CacheStats`, keyed by the trace key
    plus the scheme name.

The streaming pipeline (PR 5) adds three kinds with the same layout:

``<root>/v3/llcchunk/<sha256>.pkl``
    One L1/L2-filtered chunk of a full-execution stream, keyed by the stream
    key plus the chunk index.
``<root>/v3/llcstream/<sha256>.pkl``
    The stream manifest — chunk count plus aggregate L1/L2 filter counters —
    written once every chunk of a stream has been persisted; a later replay
    serves the whole stream from disk without re-filtering.
``<root>/v3/policystream/<sha256>.pkl``
    Per-scheme :class:`~repro.cache.stats.CacheStats` of a *full-execution*
    streaming replay (chunk budgets do not affect results, so they are not
    part of the key).

The multi-programmed co-run subsystem (PR 9) adds one more:

``<root>/v3/corun/<sha256>.pkl``
    Per-scheme :class:`~repro.cache.stats.CacheStats` (with per-stream
    counters) of an interleaved co-run replay, keyed by the app/dataset
    pairs, the interleaving schedule parameters and the way-partition
    shares (see :func:`repro.experiments.runner.corun_memo_key`).  Kinds
    are just directory names, so the new kind needs no ``MEMO_VERSION``
    bump — old entries stay valid.

:class:`ChunkSpill` is the unkeyed sibling of the chunk store: a scratch
directory for out-of-core intermediates that are only meaningful within one
computation (e.g. streaming OPT's per-chunk block and next-use arrays
between its reverse and forward passes).

Keys are hashed from their ``repr`` — every component is a primitive or a
frozen dataclass with a deterministic ``repr``.  Writes go through a
temporary file and ``os.replace`` so concurrent writers (the parallel
runner's worker processes) can never expose a partially-written entry; a
corrupt or unreadable entry is treated as a miss and recomputed.

The store is enabled by passing a ``cache_dir`` to the parallel runner or by
setting the ``REPRO_CACHE_DIR`` environment variable, in which case the
serial runner uses it too.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Optional

import numpy as np

#: Environment variable naming the on-disk memo root directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Layout version; bump when any persisted type changes incompatibly *or*
#: when a simulation-semantics fix invalidates previously computed results
#: (v1 -> v2: the PIN policy-state bugfix — pinned insertions now feed the
#: DRRIP set duel and pin-on-hit refreshes the RRPV — changed PIN-X stats,
#: which v1 stores would otherwise keep serving; v2 -> v3: the trace
#: generator's np.insert tie-ordering fix — per-vertex property updates now
#: precede the next vertex's Vertex-Array load — changed every generated
#: trace and therefore every downstream llctrace/policy result).
MEMO_VERSION = 3


def default_cache_dir() -> Optional[Path]:
    """Cache root from ``REPRO_CACHE_DIR``, or ``None`` when unset."""
    value = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return Path(value) if value else None


def key_digest(key: Any) -> str:
    """Content digest of a memo key — the entry's filename stem.

    The sweep service (:mod:`repro.experiments.service`) reuses these digests
    as task ids, so "is this task done" and "does this memo entry exist" are
    literally the same question.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class DiskMemo:
    """A pickle-per-entry store keyed by (kind, memo key)."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root) / f"v{MEMO_VERSION}"

    def path_for(self, kind: str, key: Any) -> Path:
        """File that does (or would) hold the entry for ``key``."""
        return self.root / kind / f"{key_digest(key)}.pkl"

    def contains(self, kind: str, key: Any) -> bool:
        """Whether a *readable* entry exists (corrupt entries count as absent).

        This deliberately loads the pickle rather than testing the path: a
        truncated or bit-flipped file must look like a miss to schedulers and
        resume logic exactly as it does to :meth:`get`.
        """
        return self.get(kind, key) is not None

    def get(self, kind: str, key: Any) -> Optional[Any]:
        """Load an entry, or ``None`` on a miss or an unreadable file."""
        path = self.path_for(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt, truncated or stale entry (including pickles that
            # reference since-renamed classes): treat as a miss and let the
            # caller recompute and overwrite it.
            return None

    def put(self, kind: str, key: Any, value: Any) -> None:
        """Store an entry atomically (best effort: IO errors are swallowed)."""
        path = self.path_for(kind, key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def entry_count(self, kind: Optional[str] = None) -> int:
        """Number of persisted entries (of one kind, or overall)."""
        base = self.root / kind if kind else self.root
        if not base.exists():
            return 0
        return sum(1 for _ in base.rglob("*.pkl"))


class ChunkSpill:
    """Scratch store for per-chunk arrays of one out-of-core computation.

    Streaming consumers that need more than one pass over a chunk stream
    (e.g. OPT's reverse next-use pass followed by its forward replay) spill
    each chunk here instead of holding the stream in memory.  Entries are
    ``.npy`` files under a private temporary directory that is removed by
    :meth:`close` (or context-manager exit); unlike :class:`DiskMemo` there
    is no content key — the store is scoped to a single computation.
    """

    def __init__(self, directory: Optional[Path | str] = None) -> None:
        self._owned = directory is None
        self.root = Path(
            tempfile.mkdtemp(prefix="repro-spill-") if directory is None else directory
        )
        self.root.mkdir(parents=True, exist_ok=True)

    def put(self, name: str, index: int, array: np.ndarray) -> None:
        """Persist one chunk array under (name, index)."""
        np.save(self.root / f"{name}.{index}.npy", np.asarray(array))

    def get(self, name: str, index: int) -> np.ndarray:
        """Load the chunk array stored under (name, index)."""
        return np.load(self.root / f"{name}.{index}.npy")

    def close(self) -> None:
        """Delete the spill directory (if owned by this instance)."""
        if self._owned:
            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ChunkSpill":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
