"""Experiment configuration: workload scale, cache hierarchy and defaults."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.cache.config import HierarchyConfig
from repro.fastsim.dispatch import BACKENDS
from repro.graph.datasets import ADVERSARIAL_DATASETS, HIGH_SKEW_DATASETS
from repro.perf.timing import TimingModel

#: The five applications the paper evaluates, in figure order.
PAPER_APPS: Tuple[str, ...] = ("BC", "SSSP", "PR", "PRD", "Radii")

#: Environment variable letting CI/benchmarks shrink every experiment.
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for all experiment drivers.

    Attributes
    ----------
    scale:
        Multiplier applied to every dataset's vertex count (1.0 = the default
        registry sizes from DESIGN.md Sec. 5).
    hierarchy:
        Cache hierarchy to simulate.
    seed:
        Seed controlling dataset generation and root selection.
    reorder:
        Default software reordering applied before hardware experiments
        (the paper uses DBG).
    apps / high_skew_datasets / adversarial_datasets:
        Workload lists; benchmarks override these to subsets.
    timing:
        Latency model used to convert misses into speed-ups.
    backend:
        Simulation backend (``"vector"``, ``"scalar"`` or ``"verify"``)
        handed to :mod:`repro.fastsim`; ``None`` defers to the process-wide
        default (``REPRO_SIM_BACKEND`` or ``vector``).  Backends produce
        identical counts, so this never changes experiment results — only how
        fast they are obtained.
    chunk_accesses:
        Access budget per chunk of the streaming full-execution pipeline
        (:func:`repro.experiments.runner.simulate_llc_policy_streaming`);
        ``None`` uses the runner's default.  Like the backend, this is a
        performance/memory knob only — streaming results are bit-identical
        for every budget — so it is excluded from *result* memo keys
        (``policystream`` stats, stream summaries); only the chunk store
        itself (``llcchunk`` entries and their ``llcstream`` manifest) is
        budget-keyed, because chunk boundaries depend on it.
    graph_cache_dir:
        Root of the binary-CSR graph cache used when dataset entries are
        ``repro.graph.load`` file specs (``"file:..."``, ``"mtx:..."``);
        ``None`` defers to ``REPRO_GRAPH_CACHE`` / the default cache root.
        Like the backend, this never changes results — file specs enter memo
        keys through their content digest, not through cache paths.
    """

    scale: float = 1.0
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    seed: int = 42
    reorder: str = "dbg"
    apps: Sequence[str] = PAPER_APPS
    high_skew_datasets: Sequence[str] = HIGH_SKEW_DATASETS
    adversarial_datasets: Sequence[str] = ADVERSARIAL_DATASETS
    timing: TimingModel = field(default_factory=TimingModel)
    merged_properties: bool = True
    backend: Optional[str] = None
    chunk_accesses: Optional[int] = None
    graph_cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS} or None"
            )
        if self.chunk_accesses is not None and self.chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive (or None)")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """Full-scale configuration used to produce EXPERIMENTS.md."""
        return cls()

    @classmethod
    def benchmark(cls) -> "ExperimentConfig":
        """Reduced-scale configuration for pytest-benchmark runs.

        The scale can be overridden with the ``REPRO_SCALE`` environment
        variable; workloads are trimmed to two applications and three
        datasets so each benchmark finishes in seconds while still covering
        both pull- and push-dominant applications.
        """
        scale = float(os.environ.get(SCALE_ENV_VAR, "0.25"))
        return cls(
            scale=scale,
            apps=("PR", "SSSP"),
            high_skew_datasets=("lj", "pl", "kr"),
            adversarial_datasets=("uni",),
        )

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Very small configuration used by the integration test suite."""
        return cls(
            scale=0.12,
            apps=("PR",),
            high_skew_datasets=("lj", "pl"),
            adversarial_datasets=("uni",),
        )
