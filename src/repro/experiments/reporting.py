"""Plain-text rendering of experiment results.

The paper presents results as bar charts; the reproduction prints the same
series as aligned text tables so the benchmark harness and EXPERIMENTS.md can
record them without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] | None = None, title: str | None = None) -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [render(row.get(column, "")) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))

    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[column]) for column, cell in zip(columns, rendered)))
    return "\n".join(lines)


def pivot_by_scheme(points, value_attribute: str) -> List[Dict[str, object]]:
    """Pivot a list of :class:`DataPoint` into rows keyed by (app, dataset).

    ``value_attribute`` selects which metric to show per scheme
    (``"speedup_pct"`` or ``"miss_reduction_pct"``).
    """
    rows: Dict[tuple, Dict[str, object]] = {}
    for point in points:
        key = (point.app_name, point.dataset_name)
        row = rows.setdefault(key, {"app": point.app_name, "dataset": point.dataset_name})
        row[point.scheme] = round(getattr(point, value_attribute), 2)
    return list(rows.values())
