"""Mapping from the paper's scheme names to replacement-policy factories."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cache.policies import create_policy
from repro.cache.policies.base import ReplacementPolicy

#: Scheme name (as used in the paper's figures) → (registry name, kwargs).
#: SHiP-MEM's memory-region granularity is scaled with the rest of the system
#: (16 KB regions on a 16 MB LLC become 2 KB regions on the scaled LLC).
POLICY_SPECS: Dict[str, Tuple[str, dict]] = {
    "LRU": ("lru", {}),
    "RRIP": ("rrip", {}),
    "SHiP-MEM": ("ship-mem", {"region_bytes": 2 * 1024}),
    "Hawkeye": ("hawkeye", {}),
    "Leeway": ("leeway", {}),
    "PIN-25": ("pin", {"reserved_fraction": 0.25}),
    "PIN-50": ("pin", {"reserved_fraction": 0.50}),
    "PIN-75": ("pin", {"reserved_fraction": 0.75}),
    "PIN-100": ("pin", {"reserved_fraction": 1.00}),
    "RRIP+Hints": ("rrip+hints", {}),
    "GRASP (Insertion-Only)": ("grasp-insertion", {}),
    "GRASP": ("grasp", {}),
}

#: The history-based prior schemes compared in Figs. 5 and 6.
HISTORY_SCHEMES = ("SHiP-MEM", "Hawkeye", "Leeway", "GRASP")
#: The pinning configurations compared in Fig. 8.
PINNING_SCHEMES = ("PIN-25", "PIN-50", "PIN-75", "PIN-100", "GRASP")
#: The robustness study of Fig. 9.
ROBUSTNESS_SCHEMES = ("PIN-75", "PIN-100", "GRASP")
#: The ablation study of Fig. 7.
ABLATION_SCHEMES = ("RRIP+Hints", "GRASP (Insertion-Only)", "GRASP")


def scheme_policy(name: str) -> ReplacementPolicy:
    """Instantiate the replacement policy behind a paper scheme name."""
    try:
        registry_name, kwargs = POLICY_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {', '.join(POLICY_SPECS)}"
        ) from None
    return create_policy(registry_name, **kwargs)
