"""Experiment drivers regenerating every table and figure of the paper.

Each public function corresponds to one artifact of the evaluation section
(see DESIGN.md's experiment index).  All of them accept a
:class:`~repro.experiments.config.ExperimentConfig` so benchmarks can run the
same experiments at a reduced scale.

==============================  =====================================
Paper artifact                  Function
==============================  =====================================
Table I  (dataset skew)         :func:`repro.experiments.tables.table1_skew`
Fig. 2   (LLC breakdown)        :func:`repro.experiments.figures.fig2_llc_breakdown`
Table IV (array merging)        :func:`repro.experiments.tables.table4_merging`
Fig. 5   (miss reduction)       :func:`repro.experiments.figures.fig5_miss_reduction`
Fig. 6   (speed-up)             :func:`repro.experiments.figures.fig6_speedup`
Fig. 7   (GRASP ablation)       :func:`repro.experiments.figures.fig7_ablation`
Fig. 8   (pinning, high skew)   :func:`repro.experiments.figures.fig8_pinning`
Fig. 9   (low/no skew)          :func:`repro.experiments.figures.fig9_low_skew`
Fig. 10a (reordering cost)      :func:`repro.experiments.figures.fig10a_reordering_speedup`
Fig. 10b (GRASP x reordering)   :func:`repro.experiments.figures.fig10b_grasp_over_reorderings`
Fig. 11  (vs OPT)               :func:`repro.experiments.figures.fig11_vs_opt`
Table VII (LLC size sweep)      :func:`repro.experiments.tables.table7_llc_sweep`
==============================  =====================================
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.memo import DiskMemo
from repro.experiments.parallel import WorkerPoolBrokenWarning, compare_policies_parallel
from repro.experiments.queue import FailureEvent, RetryPolicy
from repro.experiments.runner import (
    CorunSpec,
    DataPoint,
    Workload,
    build_workload,
    clear_caches,
    compare_policies,
    compare_policies_corun,
    compare_policies_streaming,
    execution_trace,
    filter_trace,
    iter_execution_chunks,
    iter_llc_chunks,
    set_disk_memo,
    simulate_llc_policy,
    simulate_llc_policy_streaming,
    simulate_corun,
    simulate_opt,
    simulate_opt_streaming,
    simulate_scheme,
    simulate_scheme_streaming,
)
from repro.experiments.schemes import POLICY_SPECS, scheme_policy
from repro.experiments.service import (
    SweepError,
    SweepResult,
    SweepSpec,
    resume_sweep,
    run_sweep,
)

__all__ = [
    "CorunSpec",
    "DataPoint",
    "DiskMemo",
    "ExperimentConfig",
    "FailureEvent",
    "POLICY_SPECS",
    "RetryPolicy",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "WorkerPoolBrokenWarning",
    "Workload",
    "build_workload",
    "clear_caches",
    "compare_policies",
    "compare_policies_parallel",
    "compare_policies_corun",
    "compare_policies_streaming",
    "execution_trace",
    "filter_trace",
    "iter_execution_chunks",
    "iter_llc_chunks",
    "resume_sweep",
    "run_sweep",
    "scheme_policy",
    "set_disk_memo",
    "simulate_llc_policy",
    "simulate_llc_policy_streaming",
    "simulate_opt",
    "simulate_opt_streaming",
    "simulate_scheme",
    "simulate_corun",
    "simulate_scheme_streaming",
]
