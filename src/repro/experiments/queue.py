"""Task/queue/worker primitives of the distributed sweep service.

This module is the transport layer underneath
:mod:`repro.experiments.service`: it knows nothing about cache simulation.
It defines

* :class:`Task` — one schedulable unit: a picklable module-level callable
  plus arguments, a content-addressed id, and dependency edges;
* :class:`WorkQueue` — per-worker deques with work stealing: an idle worker
  first drains its own queue front-to-back, then steals from the *back* of
  the longest other queue, so no worker ever idles while any queue holds
  work;
* :class:`RetryPolicy` — bounded retries with exponential backoff;
* :class:`FailureEvent` — the structured failure record shared by the
  scheduler's run manifest and the parallel runner's
  :class:`WorkerPoolBrokenWarning`, so a dying worker looks the same whether
  it died under the service or under the legacy pair-sharded runner;
* :class:`WorkerBackend` implementations — :class:`InlineBackend` (execute
  in-process; the serial fallback and the base class of the test harness's
  fault-injecting backend) and :class:`ProcessPoolBackend`
  (:class:`~concurrent.futures.ProcessPoolExecutor` with file-based worker
  heartbeats).  The backend interface is deliberately small (submit / poll /
  heartbeat_age / cancel) so a remote transport (e.g. a celery- or
  socket-based pool, the wiscsee deployment shape) can slot in without
  touching the scheduler.
"""

from __future__ import annotations

import threading
import time
import traceback
import zlib
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

# Task outcome statuses reported by backends.
TASK_OK = "ok"
TASK_ERROR = "error"
TASK_DIED = "died"

# Failure-event kinds (also used by repro.experiments.parallel).
WORKER_DIED = "worker-died"
TASK_FAILED = "task-error"
HEARTBEAT_TIMEOUT = "heartbeat-timeout"
POOL_BROKEN = "worker-pool-broken"


class WorkerCrash(RuntimeError):
    """Raised (or reported) when a worker process dies mid-task."""


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``fn`` must be a module-level callable (process backends pickle it) and
    ``args`` picklable.  ``task_id`` is content-addressed by the caller — the
    sweep service uses the memo-entry digest, so the id doubles as the
    completion check.  ``store_key`` carries the (kind-scoped) memo key for
    completion stores that need it; generic tasks may leave it ``None``.
    """

    task_id: str
    fn: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()
    deps: Tuple[str, ...] = ()
    kind: str = "task"
    label: str = ""
    store_key: Any = None

    def home_worker(self, num_workers: int) -> int:
        """Deterministic initial queue placement (stable across runs)."""
        return zlib.crc32(self.task_id.encode("utf-8")) % max(1, num_workers)


@dataclass(frozen=True)
class FailureEvent:
    """Structured record of one scheduling-visible failure."""

    kind: str  #: WORKER_DIED / TASK_FAILED / HEARTBEAT_TIMEOUT / POOL_BROKEN
    task_id: str = ""
    label: str = ""
    worker: Optional[int] = None
    attempt: int = 0
    detail: str = ""

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable form used by run manifests."""
        return {
            "kind": self.kind,
            "task_id": self.task_id,
            "label": self.label,
            "worker": self.worker,
            "attempt": self.attempt,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        where = f" on worker {self.worker}" if self.worker is not None else ""
        label = self.label or self.task_id or "<pool>"
        return f"{self.kind}: {label}{where} (attempt {self.attempt}): {self.detail}"


class WorkerPoolBrokenWarning(UserWarning):
    """A worker pool died and the computation fell back to the serial path.

    Carries the :class:`FailureEvent` as ``.event`` so programmatic callers
    (and the sweep service's failure reporting) see the same structured
    record the warning renders.
    """

    def __init__(self, event: FailureEvent) -> None:
        super().__init__(str(event))
        self.event = event


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts executions, not retries: 4 attempts means one
    initial execution plus up to three retries.  The delay before attempt
    ``n+1`` is ``base_delay * 2**(n-1)`` capped at ``max_delay`` — attempt
    numbers are 1-based, so the first retry waits ``base_delay``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("delays must satisfy 0 <= base_delay <= max_delay")

    def delay(self, attempt: int) -> float:
        """Backoff before re-dispatching after the ``attempt``-th execution."""
        return min(self.max_delay, self.base_delay * (2.0 ** max(0, attempt - 1)))


class WorkQueue:
    """Per-worker task deques with work stealing.

    Tasks are pushed to their home worker's queue (or an explicit one).
    :meth:`pop` serves a worker from its own queue first; when that is empty
    it steals from the back of the longest other queue.  The scheduler calls
    :meth:`pop` for every idle worker each tick, which yields the
    no-starvation invariant: a worker stays idle only while *every* queue is
    empty.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self._queues: List[deque] = [deque() for _ in range(num_workers)]
        self.steals = 0  #: tasks obtained from another worker's queue

    def push(self, task: Task, worker: Optional[int] = None) -> None:
        """Queue a task on ``worker`` (default: the task's home worker)."""
        home = task.home_worker(len(self._queues)) if worker is None else worker
        self._queues[home % len(self._queues)].append(task)

    def pop(self, worker: int) -> Optional[Task]:
        """Next task for ``worker``: local queue first, else steal."""
        own = self._queues[worker]
        if own:
            return own.popleft()
        victim = max(
            (queue for queue in self._queues if queue),
            key=len,
            default=None,
        )
        if victim is None:
            return None
        self.steals += 1
        return victim.pop()

    def pending(self) -> int:
        """Number of queued (not yet dispatched) tasks."""
        return sum(len(queue) for queue in self._queues)

    def depths(self) -> List[int]:
        """Per-worker queue depths (diagnostics)."""
        return [len(queue) for queue in self._queues]


@dataclass
class TaskOutcome:
    """One finished (or dead) dispatch, as reported by a backend."""

    handle: int
    task_id: str
    status: str  #: TASK_OK / TASK_ERROR / TASK_DIED
    value: Any = None
    error: str = ""


class WorkerBackend(ABC):
    """Executes dispatched tasks; the scheduler owns all policy decisions.

    The contract is poll-based and non-blocking: :meth:`submit` returns a
    handle immediately, :meth:`poll` drains outcomes that completed since the
    last call, and :meth:`heartbeat_age` reports how long ago the worker
    executing a handle last proved liveness (``None`` when the transport has
    no heartbeat signal — the scheduler then falls back to dispatch-time
    ageing).  :meth:`cancel` abandons a handle: any outcome it would still
    produce must be dropped.
    """

    name = "backend"

    @abstractmethod
    def start(self, num_workers: int) -> None:
        """Provision ``num_workers`` workers."""

    @abstractmethod
    def submit(self, worker: int, task: Task, attempt: int) -> int:
        """Dispatch ``task`` to (logical) ``worker``; returns a handle."""

    @abstractmethod
    def poll(self) -> List[TaskOutcome]:
        """Outcomes that completed since the previous poll."""

    def heartbeat_age(self, handle: int) -> Optional[float]:
        """Seconds since the worker running ``handle`` last heartbeat."""
        return None

    def cancel(self, handle: int) -> None:
        """Abandon a handle (best effort)."""

    def close(self) -> None:
        """Release workers."""


class InlineBackend(WorkerBackend):
    """Executes tasks synchronously in-process.

    The serial fallback of the service, and the base class the test
    harness's fault-injecting backend builds on: execution happens inside
    :meth:`submit` (via the overridable :meth:`_execute`), outcomes are
    buffered until :meth:`poll`, and :meth:`cancel` drops a buffered outcome
    — which is exactly how a crash-after-side-effect looks to the scheduler.
    """

    name = "inline"

    def __init__(self) -> None:
        self._outcomes: Dict[int, TaskOutcome] = {}
        self._next_handle = 0
        self.executed: List[str] = []  #: task ids actually run, in order

    def start(self, num_workers: int) -> None:  # noqa: ARG002 - no pool to size
        pass

    def _execute(self, worker: int, task: Task, attempt: int) -> TaskOutcome:
        handle = self._next_handle
        try:
            value = task.fn(*task.args) if task.fn is not None else None
            self.executed.append(task.task_id)
            return TaskOutcome(handle, task.task_id, TASK_OK, value=value)
        except WorkerCrash as crash:
            return TaskOutcome(handle, task.task_id, TASK_DIED, error=str(crash))
        except Exception as exc:  # noqa: BLE001 - report, don't unwind the scheduler
            return TaskOutcome(handle, task.task_id, TASK_ERROR, error=repr(exc))

    def submit(self, worker: int, task: Task, attempt: int) -> int:
        outcome = self._execute(worker, task, attempt)
        handle = self._next_handle
        self._next_handle += 1
        outcome.handle = handle
        self._outcomes[handle] = outcome
        return handle

    def poll(self) -> List[TaskOutcome]:
        drained = list(self._outcomes.values())
        self._outcomes.clear()
        return drained

    def cancel(self, handle: int) -> None:
        self._outcomes.pop(handle, None)


def _heartbeat_call(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    heartbeat_path: Optional[str],
    interval: float,
) -> Any:
    """Run ``fn`` in a worker process while touching a heartbeat file.

    A daemon thread refreshes the file's mtime every ``interval`` seconds for
    as long as the task runs; the scheduler reads the age via
    :meth:`ProcessPoolBackend.heartbeat_age`.  A worker that is killed stops
    beating immediately, a hung worker keeps its last mtime — both age past
    the scheduler's timeout.
    """
    if heartbeat_path is None:
        return fn(*args)
    path = Path(heartbeat_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            try:
                path.touch()
            except OSError:
                pass
            stop.wait(interval)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        return fn(*args)
    finally:
        stop.set()
        thread.join(timeout=interval)


@dataclass
class _PendingFuture:
    task_id: str
    future: Future
    heartbeat_path: Optional[Path]
    submitted_at: float = field(default_factory=time.time)


class ProcessPoolBackend(WorkerBackend):
    """Worker pool on :class:`~concurrent.futures.ProcessPoolExecutor`.

    Logical worker ids only drive the scheduler's queueing/stealing; the pool
    maps submissions to OS processes itself.  A :class:`BrokenProcessPool`
    marks every in-flight handle as :data:`TASK_DIED` and provisions a fresh
    pool, so one crashed worker never takes the run down — the scheduler
    retries the lost tasks.  Heartbeats are per-task files touched by a
    thread inside the worker (:func:`_heartbeat_call`).
    """

    name = "process"

    def __init__(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        heartbeat_dir: Optional[Path | str] = None,
        heartbeat_interval: float = 1.0,
    ) -> None:
        self._initializer = initializer
        self._initargs = initargs
        self._heartbeat_dir = Path(heartbeat_dir) if heartbeat_dir is not None else None
        self._heartbeat_interval = heartbeat_interval
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 1
        self._pending: Dict[int, _PendingFuture] = {}
        self._next_handle = 0
        self.pool_restarts = 0

    def start(self, num_workers: int) -> None:
        self._workers = max(1, num_workers)
        self._new_pool()

    def _new_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def submit(self, worker: int, task: Task, attempt: int) -> int:
        if self._pool is None:
            self.start(self._workers)
        handle = self._next_handle
        self._next_handle += 1
        hb_path = (
            self._heartbeat_dir / f"{task.task_id}.{attempt}"
            if self._heartbeat_dir is not None
            else None
        )
        try:
            future = self._pool.submit(
                _heartbeat_call,
                task.fn,
                task.args,
                str(hb_path) if hb_path is not None else None,
                self._heartbeat_interval,
            )
        except BrokenProcessPool:
            # The pool died between polls; surface this dispatch as a death
            # and let the next submission find a fresh pool.
            self.pool_restarts += 1
            self._new_pool()
            outcome = Future()
            outcome.set_exception(WorkerCrash("process pool broke at submit"))
            future = outcome
        self._pending[handle] = _PendingFuture(task.task_id, future, hb_path)
        return handle

    def poll(self) -> List[TaskOutcome]:
        done: List[TaskOutcome] = []
        broken = False
        for handle, pending in list(self._pending.items()):
            if not pending.future.done():
                continue
            del self._pending[handle]
            try:
                value = pending.future.result()
            except BrokenProcessPool as exc:
                broken = True
                done.append(TaskOutcome(handle, pending.task_id, TASK_DIED, error=repr(exc)))
            except WorkerCrash as exc:
                done.append(TaskOutcome(handle, pending.task_id, TASK_DIED, error=str(exc)))
            except BaseException as exc:  # noqa: BLE001 - worker-side failure
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                done.append(TaskOutcome(handle, pending.task_id, TASK_ERROR, error=detail))
            else:
                done.append(TaskOutcome(handle, pending.task_id, TASK_OK, value=value))
        if broken:
            # Everything still in flight went down with the pool.
            for handle, pending in list(self._pending.items()):
                del self._pending[handle]
                done.append(
                    TaskOutcome(
                        handle, pending.task_id, TASK_DIED, error="process pool broke"
                    )
                )
            self.pool_restarts += 1
            self._new_pool()
        return done

    def heartbeat_age(self, handle: int) -> Optional[float]:
        pending = self._pending.get(handle)
        if pending is None or pending.heartbeat_path is None:
            return None
        try:
            mtime = pending.heartbeat_path.stat().st_mtime
        except OSError:
            # No beat yet: age from submission (covers pool spin-up).
            return time.time() - pending.submitted_at
        return max(0.0, time.time() - mtime)

    def cancel(self, handle: int) -> None:
        pending = self._pending.pop(handle, None)
        if pending is not None:
            pending.future.cancel()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


__all__ = [
    "FailureEvent",
    "HEARTBEAT_TIMEOUT",
    "InlineBackend",
    "POOL_BROKEN",
    "ProcessPoolBackend",
    "RetryPolicy",
    "TASK_DIED",
    "TASK_ERROR",
    "TASK_FAILED",
    "TASK_OK",
    "Task",
    "TaskOutcome",
    "WORKER_DIED",
    "WorkQueue",
    "WorkerBackend",
    "WorkerCrash",
    "WorkerPoolBrokenWarning",
]
