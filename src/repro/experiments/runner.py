"""Workload construction and trace-driven simulation.

The pipeline per (application, dataset, reordering) triple mirrors the
paper's methodology (Sec. IV):

1. generate the synthetic dataset and apply the software reordering;
2. run the application to obtain per-iteration frontiers;
3. pick the region of interest — the busiest iteration in the application's
   dominant traversal direction;
4. lay the graph's arrays out in memory and generate the ROI's reference
   stream;
5. filter the stream through the L1-D and L2 caches (these levels always use
   LRU and are therefore independent of the LLC policy under study);
6. replay the surviving LLC accesses under each replacement policy, tagging
   every access with GRASP's reuse hint derived from the Address Bound
   Registers.

Workloads, filtered traces and per-policy results are memoised so that
figures sharing the same runs (e.g. Figs. 5 and 6) do not recompute them.

Fast-path dispatch
------------------
Stages 5 and 6 exist in two implementations.  The default ``vector`` backend
(:mod:`repro.fastsim`) replays the always-LRU L1-D/L2 filters as batched
NumPy stack-distance computations, and the LLC whenever the scheme under
study has a vectorized engine — plain LRU (stack-distance), the whole RRIP
family (SRRIP/BRRIP/DRRIP/GRASP, batched set-parallel sweeps with exact PSEL
set dueling and per-access reuse hints), and since PR 4 the full comparison
matrix: SHiP-MEM, Hawkeye, Leeway, the PIN-X pinning configurations
(including BYPASS accounting) and Belady's OPT.  Only the GRASP ablation
subclasses fall back to the scalar per-access simulator, which also remains
selectable as a whole via ``backend="scalar"`` (per call),
:attr:`ExperimentConfig.backend` (per experiment) or the
``REPRO_SIM_BACKEND`` environment variable (process-wide).
The ``verify`` backend runs both paths and raises
:class:`~repro.fastsim.filter.FastSimMismatchError` unless their
hit/miss/eviction counts are identical.  Backends are bit-equivalent by
construction, so memo keys deliberately exclude the backend.

On-disk memoisation
-------------------
The three in-memory memo tables (workloads, filtered LLC traces, per-scheme
stats) can additionally be backed by a persistent store shared across
processes and invocations — see :mod:`repro.experiments.memo` for the
``<cache_dir>/v3/{workload,llctrace,policy}/<sha256-of-key>.pkl`` layout.
The store is off unless ``REPRO_CACHE_DIR`` is set or
:func:`set_disk_memo` is called; the parallel runner
(:mod:`repro.experiments.parallel`) installs it in every worker so shards
and later invocations (Figs. 5-11, Tables 1-7) reuse each other's runs.
:func:`clear_caches` drops only the in-memory tables, never the disk store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics import get_application
from repro.analytics.base import AppResult, IterationRecord
from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.config import HierarchyConfig
from repro.cache.partition import WayPartition
from repro.cache.policies import BeladyOptimal, simulate_opt_misses
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.core import AddressBoundRegisterFile, GraspClassifier
from repro.experiments.config import ExperimentConfig
from repro.experiments.memo import ChunkSpill, DiskMemo, default_cache_dir
from repro.fastsim.dispatch import VERIFY
from repro.fastsim.plan import (
    PLANNER,
    ROUTE_CORUN_DELEGATE,
    ROUTE_CORUN_VECTOR,
    ROUTE_FUSED,
    ROUTE_FUSED_MULTI,
    ROUTE_OPT_SCALAR,
    ROUTE_SCALAR,
    ROUTE_VECTOR,
    STAGE_CORUN,
    STAGE_ONESHOT,
    STAGE_ROI,
    STAGE_STREAMING,
    CorunReplayStream,
    ExecutionPlan,
    FilterStream,
    FusedPipeline,
    MultiFusedPipeline,
    OptStream,
    PolicyReplayStream,
    SimRequest,
    assert_stats_equal,
    resolve_chunk_next_use,
    run_filter,
    supports_vector_replay,
    vector_opt_replay,
    vector_policy_replay,
)
from repro.experiments.schemes import scheme_policy
from repro.graph.csr import CSRGraph
from repro.graph.csr import GraphError
from repro.graph.source import canonical_spec, load_for_experiment
from repro.perf.timing import LevelCounts, TimingModel
from repro.reorder import get_technique
from repro.trace import (
    InterleavedTraceStream,
    MemoryLayout,
    Trace,
    TraceChunk,
    generate_execution_trace,
    generate_iteration_trace,
    iter_execution_trace,
    iter_trace_slices,
)


@dataclass
class Workload:
    """Everything needed to simulate one (app, dataset, reordering) triple."""

    app_name: str
    dataset_name: str
    reorder_name: str
    graph: CSRGraph
    app_result: AppResult
    roi: IterationRecord
    layout: MemoryLayout
    reorder_operations: float
    dominant_direction: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Identifier used in reports."""
        return (self.app_name, self.dataset_name, self.reorder_name)

    @property
    def total_edges_traversed(self) -> int:
        """Edges traversed across the whole application run (all iterations)."""
        return sum(record.edges_traversed for record in self.app_result.iterations)


@dataclass
class LLCTrace:
    """The post-L1/L2 access stream seen by the LLC."""

    byte_addresses: np.ndarray
    block_addresses: np.ndarray
    pcs: np.ndarray
    regions: np.ndarray
    hints: np.ndarray
    upstream_l1_hits: int
    upstream_l2_hits: int
    total_references: int

    def __len__(self) -> int:
        return int(self.block_addresses.shape[0])

    def level_counts(self, llc_hits: int, llc_misses: int) -> LevelCounts:
        """Per-level reference counts for the timing model."""
        return LevelCounts(
            l1_hits=self.upstream_l1_hits,
            l2_hits=self.upstream_l2_hits,
            llc_hits=llc_hits,
            memory_accesses=llc_misses,
        )


@dataclass
class DataPoint:
    """Result of simulating one scheme on one workload."""

    app_name: str
    dataset_name: str
    scheme: str
    stats: CacheStats
    cycles: float
    miss_reduction_pct: float = 0.0
    speedup_pct: float = 0.0


# ---------------------------------------------------------------------------
# memoisation
# ---------------------------------------------------------------------------

_WORKLOADS: Dict[tuple, Workload] = {}
_LLC_TRACES: Dict[tuple, LLCTrace] = {}
_POLICY_RUNS: Dict[tuple, CacheStats] = {}
_POLICY_STREAM_RUNS: Dict[tuple, CacheStats] = {}
_CORUN_RUNS: Dict[tuple, CacheStats] = {}
_STREAM_SUMMARIES: Dict[tuple, dict] = {}
_ROI_SUMMARIES: Dict[tuple, dict] = {}

# Optional persistent layer underneath the tables above.  ``None`` plus an
# unresolved flag means "look at REPRO_CACHE_DIR on first use".
_DISK_MEMO: Optional[DiskMemo] = None
_DISK_MEMO_RESOLVED = False


def set_disk_memo(memo: Optional[DiskMemo]) -> None:
    """Install (or, with ``None``, disable) the on-disk memo store."""
    global _DISK_MEMO, _DISK_MEMO_RESOLVED
    _DISK_MEMO = memo
    _DISK_MEMO_RESOLVED = True


def active_disk_memo() -> Optional[DiskMemo]:
    """The on-disk memo store in effect, resolving ``REPRO_CACHE_DIR`` lazily."""
    global _DISK_MEMO, _DISK_MEMO_RESOLVED
    if not _DISK_MEMO_RESOLVED:
        root = default_cache_dir()
        _DISK_MEMO = DiskMemo(root) if root is not None else None
        _DISK_MEMO_RESOLVED = True
    return _DISK_MEMO


def _memoised(table: Dict[tuple, object], kind: str, key: tuple, compute):
    """Look ``key`` up in memory, then on disk, computing (and storing) last."""
    if key in table:
        return table[key]
    memo = active_disk_memo()
    if memo is not None:
        value = memo.get(kind, key)
        if value is not None:
            table[key] = value
            return value
    value = compute()
    table[key] = value
    if memo is not None:
        memo.put(kind, key, value)
    return value


def clear_caches() -> None:
    """Drop the in-memory memo tables (the on-disk store, if any, persists)."""
    _WORKLOADS.clear()
    _LLC_TRACES.clear()
    _POLICY_RUNS.clear()
    _POLICY_STREAM_RUNS.clear()
    _CORUN_RUNS.clear()
    _STREAM_SUMMARIES.clear()
    _ROI_SUMMARIES.clear()


# ---------------------------------------------------------------------------
# memo keys
# ---------------------------------------------------------------------------
#
# Every persisted artifact is addressed by a deterministic tuple built from
# nothing but the experiment parameters, so keys (and therefore the
# content-addressed task ids of :mod:`repro.experiments.service`) can be
# computed *before* any simulation runs.  The builders below are the single
# source of truth for those tuples: the memoised pipeline stages and the
# sweep service both go through them, which is what guarantees that a task
# scheduled remotely lands on exactly the entry the serial runner would read.


def _resolve_merged(config: ExperimentConfig, merged: Optional[bool]) -> bool:
    return config.merged_properties if merged is None else merged


def canonical_dataset(dataset_name: str) -> str:
    """Memo-key form of a dataset entry (name or ``repro.graph.load`` spec).

    Synthetic specs ("lj", "rmat:scale=18,seed=7") canonicalize to
    themselves, so every pre-existing memo key is byte-identical and
    MEMO_VERSION does not move; file specs canonicalize to their
    content-addressed form so a memo entry tracks the file's *bytes*, not
    its path.  Unknown names pass through untouched — they fail loudly at
    load time instead of at key-construction time.
    """
    try:
        return canonical_spec(dataset_name)
    except GraphError:
        return dataset_name


def workload_memo_key(
    app_name: str,
    dataset_name: str,
    reorder: str,
    config: ExperimentConfig,
    merged: Optional[bool] = None,
) -> tuple:
    """Memo key of a built :class:`Workload` (kind ``workload``)."""
    return (
        app_name, canonical_dataset(dataset_name), reorder,
        config.scale, config.seed, _resolve_merged(config, merged),
    )


def llctrace_memo_key(
    app_name: str,
    dataset_name: str,
    reorder: str,
    config: ExperimentConfig,
    merged: Optional[bool] = None,
) -> tuple:
    """Memo key of the one-shot filtered ROI trace (kind ``llctrace``)."""
    return (
        (app_name, canonical_dataset(dataset_name), reorder),
        config.scale, config.seed, config.hierarchy, _resolve_merged(config, merged),
    )


def policy_memo_key(
    app_name: str,
    dataset_name: str,
    reorder: str,
    scheme: str,
    config: ExperimentConfig,
    merged: Optional[bool] = None,
) -> tuple:
    """Memo key of one scheme's ROI replay stats (kind ``policy``)."""
    return (
        (app_name, canonical_dataset(dataset_name), reorder),
        scheme, config.scale, config.seed, config.hierarchy,
        _resolve_merged(config, merged),
    )


def llcstream_summary_memo_key(
    app_name: str,
    dataset_name: str,
    reorder: str,
    config: ExperimentConfig,
    merged: Optional[bool] = None,
) -> tuple:
    """Budget-independent key of a full-execution stream (kind ``llcstream``)."""
    return (
        (app_name, canonical_dataset(dataset_name), reorder),
        config.scale, config.seed, config.hierarchy,
        _resolve_merged(config, merged),
        "execution",
    )


def policystream_memo_key(
    app_name: str,
    dataset_name: str,
    reorder: str,
    scheme: str,
    config: ExperimentConfig,
    merged: Optional[bool] = None,
) -> tuple:
    """Memo key of one scheme's full-execution stats (kind ``policystream``)."""
    return (
        (app_name, canonical_dataset(dataset_name), reorder),
        scheme, config.scale, config.seed, config.hierarchy,
        _resolve_merged(config, merged),
        "execution",
    )


@dataclass(frozen=True)
class CorunSpec:
    """One multi-programmed (co-run) experiment: who runs, and how they meet.

    ``pairs`` lists the co-running applications in stream order — stream ``k``
    is ``pairs[k]`` — as ``(app_name, dataset_name)`` tuples.  The schedule
    parameters select how the per-app LLC streams interleave (see
    :class:`~repro.trace.interleave.InterleavedTraceStream`) and ``partition``
    optionally confines each stream to its own LLC ways
    (:class:`~repro.cache.partition.WayPartition`, one share per stream;
    ``None`` is the free-for-all contention regime).
    """

    pairs: Tuple[Tuple[str, str], ...]
    schedule: str = "round_robin"
    quantum: int = 64
    seed: int = 0
    partition: Optional[WayPartition] = None

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("a co-run needs at least one application")
        if self.partition is not None and self.partition.num_streams != len(self.pairs):
            raise ValueError(
                f"partition {self.partition} provisions "
                f"{self.partition.num_streams} streams but the co-run has "
                f"{len(self.pairs)}"
            )

    @property
    def num_streams(self) -> int:
        return len(self.pairs)


def corun_memo_key(
    spec: CorunSpec,
    reorder: str,
    scheme: str,
    config: ExperimentConfig,
    merged: Optional[bool] = None,
) -> tuple:
    """Memo key of one scheme's co-run replay stats (kind ``corun``).

    Results are chunk-budget- and backend-invariant like the single-app
    keys; the schedule parameters and the partition shares are load-bearing
    (they change the merged access order / victim domains).
    """
    return (
        tuple((app, canonical_dataset(dataset)) for app, dataset in spec.pairs),
        reorder, scheme,
        spec.schedule, spec.quantum, spec.seed,
        spec.partition.counts if spec.partition is not None else None,
        config.scale, config.seed, config.hierarchy,
        _resolve_merged(config, merged),
        "corun",
    )


# ---------------------------------------------------------------------------
# workload construction
# ---------------------------------------------------------------------------

def build_workload(
    app_name: str,
    dataset_name: str,
    reorder: str = "dbg",
    config: Optional[ExperimentConfig] = None,
    merged_properties: Optional[bool] = None,
) -> Workload:
    """Build (and memoise) one workload."""
    config = config or ExperimentConfig.default()
    merged = config.merged_properties if merged_properties is None else merged_properties
    key = workload_memo_key(app_name, dataset_name, reorder, config, merged)

    def compute() -> Workload:
        app = get_application(app_name, merged_properties=merged)
        weighted = app_name == "SSSP"
        graph = load_for_experiment(
            dataset_name, scale=config.scale, seed=config.seed,
            weighted=weighted, cache_root=config.graph_cache_dir,
        )

        degree_source = "in" if app.dominant_direction == "push" else "out"
        technique = get_technique(reorder, degree_source=degree_source)
        reorder_result = technique.apply(graph)
        reordered = reorder_result.graph

        root = int(np.argmax(reordered.out_degrees))
        app_result = app.run(reordered, root=root)

        candidates = app_result.iterations_in_direction(app.dominant_direction) or app_result.iterations
        roi = max(candidates, key=lambda record: record.active_vertices)

        layout = MemoryLayout(reordered, app.access_profile())
        return Workload(
            app_name=app_name,
            dataset_name=dataset_name,
            reorder_name=reorder,
            graph=reordered,
            app_result=app_result,
            roi=roi,
            layout=layout,
            reorder_operations=reorder_result.operations,
            dominant_direction=app.dominant_direction,
        )

    return _memoised(_WORKLOADS, "workload", key, compute)


def roi_trace(workload: Workload) -> Trace:
    """Reference stream of the workload's region-of-interest iteration."""
    return generate_iteration_trace(
        workload.graph,
        workload.layout,
        workload.dominant_direction,
        frontier=workload.roi.frontier,
    )


# ---------------------------------------------------------------------------
# L1/L2 filtering and hint classification
# ---------------------------------------------------------------------------

def filter_trace(
    trace: Trace,
    hierarchy: HierarchyConfig,
    layout: Optional[MemoryLayout] = None,
    backend: Optional[str] = None,
) -> LLCTrace:
    """Run the L1-D/L2 filters over a trace and return the LLC-bound accesses.

    ``backend`` selects the implementation (``vector``/``scalar``/``verify``);
    ``None`` defers to :func:`repro.fastsim.default_backend`.  Both backends
    produce identical traces.
    """
    result = run_filter(trace, hierarchy, backend=backend)
    keep = result.keep
    byte_addresses = trace.addresses[keep]
    block_addresses = byte_addresses >> hierarchy.llc.block_offset_bits
    hints = _classify_hints(byte_addresses, layout, hierarchy.llc)
    return LLCTrace(
        byte_addresses=byte_addresses,
        block_addresses=block_addresses,
        pcs=trace.pcs[keep],
        regions=trace.regions[keep],
        hints=hints,
        upstream_l1_hits=int(result.l1_stats.hits),
        upstream_l2_hits=int(result.l2_stats.hits),
        total_references=len(trace),
    )


def _hint_classifier(
    layout: Optional[MemoryLayout], llc_config: CacheConfig
) -> GraspClassifier:
    """GRASP classifier configured with the workload's Address Bound Registers."""
    abrs = AddressBoundRegisterFile(capacity=8)
    if layout is not None:
        for start, end in layout.property_array_bounds():
            abrs.configure(start, end)
    return GraspClassifier(abrs, llc_size_bytes=llc_config.size_bytes)


def _classify_hints(
    byte_addresses: np.ndarray,
    layout: Optional[MemoryLayout],
    llc_config: CacheConfig,
) -> np.ndarray:
    """Tag LLC accesses with GRASP reuse hints from the workload's ABRs."""
    return _hint_classifier(layout, llc_config).classify_array(byte_addresses)


def llc_trace_for(workload: Workload, config: ExperimentConfig) -> LLCTrace:
    """Memoised L1/L2-filtered LLC trace for a workload."""
    key = llctrace_memo_key(*workload.key, config, workload.layout.profile.merged)
    return _memoised(
        _LLC_TRACES,
        "llctrace",
        key,
        lambda: filter_trace(
            roi_trace(workload), config.hierarchy, workload.layout, backend=config.backend
        ),
    )


# ---------------------------------------------------------------------------
# LLC simulation
# ---------------------------------------------------------------------------

def _policy_label(policy: ReplacementPolicy) -> str:
    """Scheme label used when planning from a bare policy object."""
    return getattr(policy, "name", type(policy).__name__)


def _plan_replay(
    policy: ReplacementPolicy,
    backend: Optional[str],
    stage: str = STAGE_ONESHOT,
    **kwargs,
) -> ExecutionPlan:
    """Plan a single-policy request (one-shot/ROI/streaming stages)."""
    return PLANNER.plan(
        SimRequest(
            schemes=(_policy_label(policy),),
            policies=(policy,),
            backend=backend,
            stage=stage,
            **kwargs,
        )
    )


def simulate_llc_policy(
    llc_trace: LLCTrace,
    policy: ReplacementPolicy,
    llc_config: CacheConfig,
    use_hints: bool = True,
    backend: Optional[str] = None,
) -> CacheStats:
    """Replay an LLC trace under one replacement policy.

    Routing goes through :class:`repro.fastsim.plan.RoutePlanner`: schemes
    with a vectorized engine — plain LRU, the exact RRIP-family policies
    (SRRIP/BRRIP/DRRIP/GRASP, with the trace's reuse-hint stream wired
    through) and the PR 4 engines for SHiP-MEM, Hawkeye, Leeway and PIN-X
    (hint and PC streams wired through) — dispatch to
    :func:`repro.fastsim.vector_policy_replay`; only the GRASP ablation
    subclasses use the scalar simulator regardless of the backend.
    """
    if type(policy) is BeladyOptimal:
        # OPT cannot run online through SetAssociativeCache: its "scalar"
        # reference is the offline loop, which simulate_opt dispatches to
        # (with the same vector/scalar/verify semantics as every policy).
        return simulate_opt(llc_trace, llc_config, backend=backend)
    plan = _plan_replay(policy, backend)
    if plan.route == ROUTE_SCALAR:
        return _scalar_llc_replay(llc_trace, policy, llc_config, use_hints)
    vector_stats = vector_policy_replay(
        policy,
        llc_trace.block_addresses,
        llc_config,
        hints=llc_trace.hints if use_hints else None,
        regions=llc_trace.regions,
        pcs=llc_trace.pcs,
    )
    if plan.verify:
        scalar_stats = _scalar_llc_replay(llc_trace, policy, llc_config, use_hints)
        assert_stats_equal(scalar_stats, vector_stats, f"LLC {policy.name} replay")
    return vector_stats


def _scalar_llc_replay(
    llc_trace: LLCTrace,
    policy: ReplacementPolicy,
    llc_config: CacheConfig,
    use_hints: bool,
) -> CacheStats:
    """Reference LLC replay: one :meth:`access_block` call per access."""
    stream = _ScalarLLCStream(policy, llc_config)
    stream.feed(llc_trace, use_hints)
    return stream.stats()


def simulate_opt(
    llc_trace: LLCTrace, llc_config: CacheConfig, backend: Optional[str] = None
) -> CacheStats:
    """Belady's OPT lower bound on misses for an LLC trace.

    Dispatches like :func:`simulate_llc_policy`: the ``vector`` backend uses
    the batched next-use engine (:mod:`repro.fastsim.opt`), ``scalar`` the
    offline reference loop, and ``verify`` runs both and asserts identical
    counts.
    """
    plan = PLANNER.plan(SimRequest(schemes=("OPT",), backend=backend))
    if plan.route == ROUTE_OPT_SCALAR:
        return simulate_opt_misses(llc_trace.block_addresses, llc_config)
    vector_stats = vector_opt_replay(llc_trace.block_addresses, llc_config)
    if plan.verify:
        scalar_stats = simulate_opt_misses(llc_trace.block_addresses, llc_config)
        assert_stats_equal(scalar_stats, vector_stats, "LLC OPT replay")
    return vector_stats


# ---------------------------------------------------------------------------
# streaming full-execution pipeline
# ---------------------------------------------------------------------------

#: Default access budget per streamed trace chunk (a few tens of MB of
#: working set); override per config (`ExperimentConfig.chunk_accesses`) or
#: per call.  The budget only bounds peak memory — results are bit-identical
#: for every value.
DEFAULT_CHUNK_ACCESSES = 1 << 20


def execution_trace(workload: Workload) -> Trace:
    """One-shot reference stream of the workload's *full* execution.

    Every iteration of the application run contributes its direction and
    frontier (warmup, push/pull switches, frontier evolution), unlike
    :func:`roi_trace`, which materializes only the busiest iteration.  Large
    executions should use :func:`iter_execution_chunks` instead — this
    function holds the whole stream in memory and exists for small workloads
    and the streaming-equivalence tests.
    """
    return generate_execution_trace(
        workload.graph, workload.layout, workload.app_result.iterations
    )


def iter_execution_chunks(
    workload: Workload, max_chunk_accesses: Optional[int] = None
) -> Iterator[TraceChunk]:
    """Stream the workload's full execution as bounded trace chunks."""
    return iter_execution_trace(
        workload.graph,
        workload.layout,
        workload.app_result.iterations,
        max_chunk_accesses=max_chunk_accesses,
    )


def _chunk_budget(config: ExperimentConfig, max_chunk_accesses: Optional[int]) -> int:
    if max_chunk_accesses is not None:
        return max_chunk_accesses
    if config.chunk_accesses is not None:
        return config.chunk_accesses
    return DEFAULT_CHUNK_ACCESSES


def _summary_key(workload: Workload, config: ExperimentConfig) -> tuple:
    """Budget-independent key for the aggregate L1/L2 stream counters."""
    return llcstream_summary_memo_key(*workload.key, config, workload.layout.profile.merged)


def _stream_key(workload: Workload, config: ExperimentConfig, budget: int) -> tuple:
    """Key for the chunked stream itself — chunk boundaries depend on the budget."""
    return _summary_key(workload, config) + (budget,)


def iter_llc_chunks(
    workload: Workload,
    config: ExperimentConfig,
    max_chunk_accesses: Optional[int] = None,
    backend: Optional[str] = None,
) -> Iterator[LLCTrace]:
    """Stream the full execution's post-L1/L2 LLC accesses, chunk by chunk.

    The streaming analogue of :func:`llc_trace_for`: each generated trace
    chunk runs through one persistent :class:`~repro.fastsim.FilterStream`
    (whose L1/L2 state carries across chunks) and is tagged with GRASP reuse
    hints, yielding per-chunk :class:`LLCTrace` pieces whose concatenation is
    bit-identical to filtering the materialized execution trace.

    With the on-disk memo enabled, every filtered chunk is persisted
    (``llcchunk``) and a manifest (``llcstream``) is written once the stream
    completes; later iterations — other policies replaying the same
    workload, other processes — serve the stream from disk one chunk at a
    time (peak memory stays O(chunk) on the memo-hit path too) without
    regenerating or re-filtering anything.  A missing or corrupt persisted
    chunk falls back to regeneration mid-stream: the already-served prefix
    is re-filtered to rebuild the L1/L2 state but not yielded again.
    """
    budget = _chunk_budget(config, max_chunk_accesses)
    key = _stream_key(workload, config, budget)
    summary_key = _summary_key(workload, config)
    memo = active_disk_memo()
    served = 0
    if memo is not None:
        manifest = memo.get("llcstream", key)
        if manifest is not None:
            _STREAM_SUMMARIES.setdefault(key, manifest)
            _STREAM_SUMMARIES.setdefault(summary_key, manifest)
            while served < manifest["chunks"]:
                llc_chunk = memo.get("llcchunk", key + (served,))
                if llc_chunk is None:
                    break
                yield llc_chunk
                served += 1
            if served == manifest["chunks"]:
                return
    filter_stream = FilterStream(
        config.hierarchy, backend=backend if backend is not None else config.backend
    )
    classifier = _hint_classifier(workload.layout, config.hierarchy.llc)
    offset_bits = config.hierarchy.llc.block_offset_bits
    count = 0
    for chunk in iter_execution_chunks(workload, budget):
        l1_before, l2_before = filter_stream.upstream_hit_counts()
        keep = filter_stream.feed(chunk.trace)
        l1_after, l2_after = filter_stream.upstream_hit_counts()
        byte_addresses = chunk.trace.addresses[keep]
        llc_chunk = LLCTrace(
            byte_addresses=byte_addresses,
            block_addresses=byte_addresses >> offset_bits,
            pcs=chunk.trace.pcs[keep],
            regions=chunk.trace.regions[keep],
            hints=classifier.classify_array(byte_addresses),
            upstream_l1_hits=l1_after - l1_before,
            upstream_l2_hits=l2_after - l2_before,
            total_references=len(chunk.trace),
        )
        if memo is not None and count >= served:
            # Chunks before `served` were just read back from disk intact;
            # only the broken/missing tail needs (re)persisting.
            memo.put("llcchunk", key + (count,), llc_chunk)
        count += 1
        if count > served:
            yield llc_chunk
    l1_hits, l2_hits = filter_stream.upstream_hit_counts()
    if filter_stream.mode == VERIFY:
        filter_stream.level_stats()  # cross-check the backends' counters
    summary = {
        "chunks": count,
        "l1_hits": l1_hits,
        "l2_hits": l2_hits,
        "total_references": filter_stream.total_references,
    }
    # The budget-keyed entry is the manifest the chunk store is served by;
    # the budget-less entry lets execution_stream_summary reuse the counters
    # (identical for every budget) from runs with other chunk budgets.
    _STREAM_SUMMARIES[key] = summary
    _STREAM_SUMMARIES[summary_key] = summary
    if memo is not None:
        memo.put("llcstream", key, summary)
        memo.put("llcstream", summary_key, summary)


def execution_stream_summary(
    workload: Workload,
    config: ExperimentConfig,
    max_chunk_accesses: Optional[int] = None,
) -> dict:
    """Aggregate L1/L2 filter counters of the full-execution stream.

    Served from the in-memory/on-disk manifests when available — the
    counters are budget-invariant, so a manifest written by a run with any
    chunk budget qualifies; otherwise drains :func:`iter_llc_chunks` once
    (which writes them).
    """
    budget = _chunk_budget(config, max_chunk_accesses)
    memo = active_disk_memo()
    for key in (_stream_key(workload, config, budget), _summary_key(workload, config)):
        summary = _STREAM_SUMMARIES.get(key)
        if summary is not None:
            return summary
        if memo is not None:
            summary = memo.get("llcstream", key)
            if summary is not None:
                _STREAM_SUMMARIES[key] = summary
                return summary
    for _ in iter_llc_chunks(workload, config, budget):
        pass
    return _STREAM_SUMMARIES[_summary_key(workload, config)]


class _ScalarLLCStream:
    """Streaming scalar LLC reference: one live cache fed chunk by chunk."""

    def __init__(self, policy: ReplacementPolicy, llc_config: CacheConfig) -> None:
        self._cache = SetAssociativeCache(llc_config, policy)

    def feed(self, chunk: LLCTrace, use_hints: bool) -> None:
        access = self._cache.access_block
        blocks = chunk.block_addresses.tolist()
        pcs = chunk.pcs.tolist()
        regions = chunk.regions.tolist()
        hints = chunk.hints.tolist() if use_hints else [0] * len(blocks)
        for block, pc, hint, region in zip(blocks, pcs, hints, regions):
            access(block, pc, hint, region)

    def stats(self) -> CacheStats:
        return self._cache.stats


def _simulate_fused_streaming(
    workload: Workload,
    policy: ReplacementPolicy,
    config: ExperimentConfig,
    use_hints: bool,
    budget: int,
) -> CacheStats:
    """Full-execution replay through the fused single-pass pipeline.

    Generates raw trace chunks and pushes each through one native call
    (threaded L1/L2 filter + LLC engine, see
    :mod:`repro.fastsim.kernels.fused`); no filtered LLC trace is ever
    materialized.  The aggregate L1/L2 counters it produces are identical to
    the staged stream's, so they are published under the budget-less
    ``llcstream`` summary key for :func:`execution_stream_summary` — but
    *not* under the budget-keyed manifest, which promises per-chunk entries
    in the ``llcchunk`` store that this path never writes.
    """
    classifier = _hint_classifier(workload.layout, config.hierarchy.llc)
    fused = FusedPipeline(
        config.hierarchy, policy, classifier=classifier, use_hints=use_hints
    )
    count = 0
    for chunk in iter_execution_chunks(workload, budget):
        fused.feed(chunk.trace)
        count += 1
    results = fused.stats()
    summary = {
        "chunks": count,
        "l1_hits": int(results.l1_stats.hits),
        "l2_hits": int(results.l2_stats.hits),
        "total_references": fused.total_references,
    }
    summary_key = _summary_key(workload, config)
    _STREAM_SUMMARIES.setdefault(summary_key, summary)
    memo = active_disk_memo()
    if memo is not None and not memo.contains("llcstream", summary_key):
        memo.put("llcstream", summary_key, summary)
    return results.llc_stats


def simulate_llc_policy_streaming(
    workload: Workload,
    policy: ReplacementPolicy,
    config: Optional[ExperimentConfig] = None,
    use_hints: bool = True,
    backend: Optional[str] = None,
    max_chunk_accesses: Optional[int] = None,
    shared_stream: bool = False,
) -> CacheStats:
    """Replay the workload's *full execution* under one policy, streaming.

    The multi-iteration counterpart of :func:`simulate_llc_policy`: trace
    generation, L1/L2 filtering and the LLC replay all run chunk by chunk
    with resumable state, so peak memory is bounded by the chunk budget
    regardless of how many iterations the application executed.  Backend
    semantics match the one-shot path — ``vector`` feeds a
    :class:`~repro.fastsim.PolicyReplayStream` (scalar fallback for policies
    without a fast engine), ``scalar`` keeps the reference cache alive
    across chunks, and ``verify`` runs both and raises
    :class:`~repro.fastsim.FastSimMismatchError` unless their statistics are
    identical.  Results are bit-identical to replaying the materialized
    execution trace one-shot, for every chunk budget.

    Under the ``vector`` backend, policies with a fused kernel take the
    single-pass route (:class:`~repro.fastsim.FusedPipeline`): each raw
    trace chunk runs through the L1/L2 filter and the LLC engine in one
    native call, with no intermediate LLC-trace materialization.  The fused
    route is skipped when replaying the persisted chunk store is cheaper
    than regenerating the trace — either the store already sits on disk, or
    ``shared_stream`` declares that other schemes will replay the same
    stream and a memo is active to hold it (the staged path then
    materializes and persists the stream once, on the first scheme that
    actually computes).
    """
    config = config or ExperimentConfig.default()
    if type(policy) is BeladyOptimal:
        return simulate_opt_streaming(
            workload, config, backend=backend, max_chunk_accesses=max_chunk_accesses
        )
    budget = _chunk_budget(config, max_chunk_accesses)
    memo = active_disk_memo()
    plan = _plan_replay(
        policy,
        backend if backend is not None else config.backend,
        stage=STAGE_STREAMING,
        hierarchy=config.hierarchy,
        consumers=2 if shared_stream else 1,
        have_memo=memo is not None,
        have_chunk_store=memo is not None
        and memo.contains("llcstream", _stream_key(workload, config, budget)),
    )
    if plan.route == ROUTE_FUSED:
        return _simulate_fused_streaming(workload, policy, config, use_hints, budget)
    llc_config = config.hierarchy.llc
    vector_stream = None
    scalar_stream = None
    if plan.route == ROUTE_VECTOR:
        vector_stream = PolicyReplayStream(policy, llc_config)
    if vector_stream is None or plan.verify:
        scalar_stream = _ScalarLLCStream(policy, llc_config)
    for chunk in iter_llc_chunks(
        workload, config, max_chunk_accesses, backend=backend
    ):
        if vector_stream is not None:
            vector_stream.feed(
                chunk.block_addresses,
                hints=chunk.hints if use_hints else None,
                regions=chunk.regions,
                pcs=chunk.pcs,
            )
        if scalar_stream is not None:
            scalar_stream.feed(chunk, use_hints)
    if vector_stream is not None and scalar_stream is not None:
        assert_stats_equal(
            scalar_stream.stats(),
            vector_stream.stats(),
            f"streaming LLC {policy.name} replay",
        )
    if vector_stream is not None:
        return vector_stream.stats()
    return scalar_stream.stats()


def simulate_opt_streaming(
    workload: Workload,
    config: Optional[ExperimentConfig] = None,
    backend: Optional[str] = None,
    max_chunk_accesses: Optional[int] = None,
) -> CacheStats:
    """Belady's OPT over the full execution's LLC stream, out of core.

    OPT needs the future, so the stream is processed in two passes with a
    disk spill (:class:`~repro.experiments.memo.ChunkSpill`) instead of one
    resumable pass: the filtered chunks are spilled while a reverse sweep
    resolves globally consistent per-chunk next-use indices
    (:func:`~repro.fastsim.resolve_chunk_next_use`), then a forward sweep
    feeds an :class:`~repro.fastsim.OptStream`.  Peak memory stays bounded
    by the chunk budget plus one entry per distinct block.

    The scalar reference (:func:`simulate_opt_misses`) is inherently
    one-shot, so ``scalar`` and the ``verify`` cross-check materialize the
    filtered stream — use them at test scales only.
    """
    config = config or ExperimentConfig.default()
    plan = PLANNER.plan(
        SimRequest(
            schemes=("OPT",),
            backend=backend if backend is not None else config.backend,
            stage=STAGE_STREAMING,
            hierarchy=config.hierarchy,
        )
    )
    llc_config = config.hierarchy.llc
    with ChunkSpill() as spill:
        starts: List[int] = []
        offset = 0
        count = 0
        for chunk in iter_llc_chunks(
            workload, config, max_chunk_accesses, backend=backend
        ):
            spill.put("blocks", count, chunk.block_addresses)
            starts.append(offset)
            offset += len(chunk)
            count += 1

        def materialized() -> np.ndarray:
            if not count:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(
                [spill.get("blocks", index) for index in range(count)]
            )

        if plan.route == ROUTE_OPT_SCALAR:
            return simulate_opt_misses(materialized(), llc_config)
        next_seen: dict = {}
        for index in reversed(range(count)):
            spill.put(
                "next",
                index,
                resolve_chunk_next_use(
                    spill.get("blocks", index), starts[index], next_seen
                ),
            )
        stream = OptStream(llc_config.num_sets, llc_config.ways)
        for index in range(count):
            stream.feed(spill.get("blocks", index), spill.get("next", index))
        stats = CacheStats.from_counts(
            name=f"{llc_config.name}-OPT",
            hits=stream.hit_count,
            misses=stream.miss_count,
            evictions=stream.evictions,
        )
        if plan.verify:
            scalar_stats = simulate_opt_misses(materialized(), llc_config)
            assert_stats_equal(scalar_stats, stats, "streaming LLC OPT replay")
        return stats


def simulate_scheme_streaming(
    workload: Workload, scheme: str, config: ExperimentConfig,
    shared_stream: bool = False,
) -> CacheStats:
    """Memoised full-execution streaming simulation of one scheme.

    The streaming analogue of :func:`simulate_scheme`: results are
    chunk-budget-invariant, so the memo key carries only the workload,
    scheme and hierarchy (kind ``policystream``).  ``shared_stream``
    declares that other schemes will replay the same filtered stream (see
    :func:`simulate_llc_policy_streaming`).
    """
    key = policystream_memo_key(*workload.key, scheme, config, workload.layout.profile.merged)

    def compute() -> CacheStats:
        if scheme == "OPT":
            return simulate_opt_streaming(workload, config, backend=config.backend)
        return simulate_llc_policy_streaming(
            workload, scheme_policy(scheme), config, backend=config.backend,
            shared_stream=shared_stream,
        )

    return _memoised(_POLICY_STREAM_RUNS, "policystream", key, compute)


def _fused_multi_targets(schemes, is_cached):
    """Ordered unique schemes eligible for one shared fused-multi pass.

    Filters out already-memoised schemes (nothing to compute), OPT
    (offline) and ablation subclasses (no vector engine); returns the
    surviving schemes with their live policy objects, aligned.
    """
    targets: List[str] = []
    policies: List[ReplacementPolicy] = []
    for scheme in dict.fromkeys(schemes):
        if scheme == "OPT" or is_cached(scheme):
            continue
        policy = scheme_policy(scheme)
        if not supports_vector_replay(policy):
            continue
        targets.append(scheme)
        policies.append(policy)
    return targets, policies


def _maybe_fused_multi_streaming(
    workload: Workload, schemes: Sequence[str], config: ExperimentConfig
) -> None:
    """Opportunistic fused multi-scheme full-execution pass.

    When the planner picks the ``fused-multi`` route, every eligible
    uncached scheme replays from one shared (natively threaded) filter
    phase — the raw trace is generated and filtered once for all of them —
    and the per-scheme stats land in the ``policystream`` memo, so the
    per-scheme :func:`simulate_scheme_streaming` calls that follow are
    pure memo hits.  Any other plan returns without side effects and the
    staged materialize-once path runs exactly as before.
    """
    memo = active_disk_memo()
    merged = workload.layout.profile.merged

    def cached(scheme: str) -> bool:
        key = policystream_memo_key(*workload.key, scheme, config, merged)
        return key in _POLICY_STREAM_RUNS or (
            memo is not None and memo.contains("policystream", key)
        )

    targets, policies = _fused_multi_targets(schemes, cached)
    if len(targets) < 2:
        return
    budget = _chunk_budget(config, None)
    plan = PLANNER.plan(
        SimRequest(
            schemes=tuple(targets),
            policies=tuple(policies),
            backend=config.backend,
            stage=STAGE_STREAMING,
            hierarchy=config.hierarchy,
            have_memo=memo is not None,
            have_chunk_store=memo is not None
            and memo.contains("llcstream", _stream_key(workload, config, budget)),
        )
    )
    if plan.route != ROUTE_FUSED_MULTI:
        return
    classifier = _hint_classifier(workload.layout, config.hierarchy.llc)
    multi = MultiFusedPipeline(config.hierarchy, policies, classifier=classifier)
    count = 0
    for chunk in iter_execution_chunks(workload, budget):
        multi.feed(chunk.trace)
        count += 1
    l1_hits, l2_hits = multi.upstream_hit_counts()
    summary = {
        "chunks": count,
        "l1_hits": int(l1_hits),
        "l2_hits": int(l2_hits),
        "total_references": multi.total_references,
    }
    # Budget-less summary only — the budget-keyed manifest promises
    # per-chunk ``llcchunk`` entries this path never writes (see
    # _simulate_fused_streaming).
    summary_key = _summary_key(workload, config)
    _STREAM_SUMMARIES.setdefault(summary_key, summary)
    if memo is not None and not memo.contains("llcstream", summary_key):
        memo.put("llcstream", summary_key, summary)
    for scheme, stats in zip(targets, multi.stats()):
        key = policystream_memo_key(*workload.key, scheme, config, merged)
        _POLICY_STREAM_RUNS[key] = stats
        if memo is not None:
            memo.put("policystream", key, stats)


def execution_cycles(
    workload: Workload, stats: CacheStats, config: ExperimentConfig
) -> float:
    """Execution cycles of the *full* application run under an LLC outcome."""
    summary = execution_stream_summary(workload, config)
    counts = LevelCounts(
        l1_hits=summary["l1_hits"],
        l2_hits=summary["l2_hits"],
        llc_hits=stats.hits,
        memory_accesses=stats.misses,
    )
    return config.timing.cycles(counts)


def compare_policies_streaming(
    app_names: Sequence[str],
    dataset_names: Sequence[str],
    schemes: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reorder: Optional[str] = None,
    baseline: str = "RRIP",
) -> List[DataPoint]:
    """Full-execution counterpart of :func:`compare_policies`.

    Simulates every scheme over the complete application run (all
    iterations, streamed with bounded memory) instead of the single ROI
    iteration, reporting miss reductions and speed-ups against the baseline
    exactly like the one-shot comparison.
    """
    config = config or ExperimentConfig.default()
    reorder = reorder or config.reorder
    timing: TimingModel = config.timing
    # Mirror compare_policies: when several schemes will replay the same
    # stream, the planner first tries the fused multi-scheme route (one
    # shared filter phase, N replays); when that is off the table the
    # staged persist-once path materializes the filtered chunks for every
    # scheme to replay (the per-scheme fused gate checks for the active
    # memo itself).
    shared = len({baseline, *schemes}) > 1
    points: List[DataPoint] = []
    for dataset_name in dataset_names:
        for app_name in app_names:
            workload = build_workload(app_name, dataset_name, reorder=reorder, config=config)
            _maybe_fused_multi_streaming(workload, (baseline, *schemes), config)
            baseline_stats = simulate_scheme_streaming(
                workload, baseline, config, shared_stream=shared
            )
            baseline_cycles = execution_cycles(workload, baseline_stats, config)
            for scheme in schemes:
                stats = (
                    baseline_stats
                    if scheme == baseline
                    else simulate_scheme_streaming(
                        workload, scheme, config, shared_stream=shared
                    )
                )
                cycles = execution_cycles(workload, stats, config)
                points.append(
                    DataPoint(
                        app_name=app_name,
                        dataset_name=dataset_name,
                        scheme=scheme,
                        stats=stats,
                        cycles=cycles,
                        miss_reduction_pct=timing.miss_reduction_percent(
                            baseline_stats.misses, stats.misses
                        ),
                        speedup_pct=timing.speedup_percent(baseline_cycles, cycles),
                    )
                )
    return points


# ---------------------------------------------------------------------------
# multi-programmed (co-run) simulation
# ---------------------------------------------------------------------------


class _ScalarCorunStream:
    """Scalar co-run reference: one stream-tracking cache fed merged chunks."""

    def __init__(self, policy: ReplacementPolicy, llc_config: CacheConfig, partition) -> None:
        self._cache = SetAssociativeCache(
            llc_config, policy, partition=partition, track_streams=True
        )

    def feed(self, chunk) -> None:
        access = self._cache.access_block
        blocks = chunk.block_addresses.tolist()
        pcs = chunk.pcs.tolist()
        hints = chunk.hints.tolist()
        regions = chunk.regions.tolist()
        streams = chunk.stream_ids.tolist()
        for block, pc, hint, region, stream in zip(blocks, pcs, hints, regions, streams):
            access(block, pc, hint, region, stream)

    def stats(self) -> CacheStats:
        return self._cache.stats


def simulate_corun(
    spec: CorunSpec,
    scheme: str,
    config: Optional[ExperimentConfig] = None,
    reorder: Optional[str] = None,
    max_chunk_accesses: Optional[int] = None,
) -> CacheStats:
    """Replay N co-running applications through one shared LLC, streaming.

    Each application's post-L1/L2 stream is produced exactly as in the
    single-programmed path (:func:`iter_llc_chunks` — private L1/L2 filters
    per app, per-app reuse hints), merged under the spec's arrival schedule
    with per-stream address-space remapping, and replayed through one shared
    LLC.  The returned :class:`CacheStats` carries per-stream counters that
    sum exactly to the aggregates.

    Degenerate co-run is a strict generalization: a 1-app spec with
    ``partition=None`` delegates to :func:`simulate_scheme_streaming`, so it
    returns bit-identical stats *and* hits the same memo entries as the
    single-app path.

    Backend semantics match the single-app streaming path: ``vector`` uses
    :class:`~repro.fastsim.CorunReplayStream` when
    :func:`~repro.fastsim.supports_vector_corun` accepts the configuration
    (per-stream engines under a partition, shared engine plus ``bincount``
    attribution without), ``scalar`` replays through a stream-tracking
    :class:`~repro.cache.SetAssociativeCache`, and ``verify`` runs both and
    compares every counter including the per-stream breakdowns.  ``OPT`` has
    no online co-run analogue (offline Belady needs the future of the merged
    stream) and is rejected.

    Results are memoised under the new ``corun`` kind — a fresh directory in
    the on-disk store, so ``MEMO_VERSION`` is unaffected.
    """
    config = config or ExperimentConfig.default()
    reorder = reorder or config.reorder
    # The planner rejects OPT (offline, no co-run analogue) and owns the
    # delegate / vector / PIN-fallback decisions.
    plan = PLANNER.plan(
        SimRequest(
            schemes=(scheme,),
            policies=(scheme_policy(scheme),) if scheme != "OPT" else (),
            backend=config.backend,
            stage=STAGE_CORUN,
            hierarchy=config.hierarchy,
            partition=spec.partition,
            num_streams=spec.num_streams,
        )
    )
    if plan.route == ROUTE_CORUN_DELEGATE:
        app_name, dataset_name = spec.pairs[0]
        workload = build_workload(app_name, dataset_name, reorder=reorder, config=config)
        return simulate_scheme_streaming(workload, scheme, config)
    key = corun_memo_key(spec, reorder, scheme, config)

    def compute() -> CacheStats:
        workloads = [
            build_workload(app_name, dataset_name, reorder=reorder, config=config)
            for app_name, dataset_name in spec.pairs
        ]
        merged = InterleavedTraceStream(
            [
                iter_llc_chunks(workload, config, max_chunk_accesses)
                for workload in workloads
            ],
            schedule=spec.schedule,
            quantum=spec.quantum,
            seed=spec.seed,
            chunk_accesses=_chunk_budget(config, max_chunk_accesses),
        )
        llc_config = config.hierarchy.llc
        policy = scheme_policy(scheme)
        vector_stream = None
        scalar_stream = None
        if plan.route == ROUTE_CORUN_VECTOR:
            vector_stream = CorunReplayStream(
                policy, llc_config, spec.num_streams, partition=spec.partition
            )
        if vector_stream is None or plan.verify:
            scalar_stream = _ScalarCorunStream(
                scheme_policy(scheme) if vector_stream is not None else policy,
                llc_config,
                spec.partition,
            )
        for chunk in merged:
            if vector_stream is not None:
                vector_stream.feed(
                    chunk.block_addresses, chunk.stream_ids,
                    chunk.hints, chunk.regions, chunk.pcs,
                )
            if scalar_stream is not None:
                scalar_stream.feed(chunk)
        if vector_stream is not None and scalar_stream is not None:
            assert_stats_equal(
                scalar_stream.stats().validate(),
                vector_stream.stats(),
                f"co-run LLC {policy.name} replay",
            )
        if vector_stream is not None:
            return vector_stream.stats()
        return scalar_stream.stats().validate()

    return _memoised(_CORUN_RUNS, "corun", key, compute)


def compare_policies_corun(
    spec: CorunSpec,
    schemes: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reorder: Optional[str] = None,
    baseline: str = "RRIP",
) -> List[DataPoint]:
    """Co-run counterpart of :func:`compare_policies_streaming`.

    Simulates every scheme on the interleaved co-run and reports **one data
    point per co-running application per scheme**, built from that stream's
    own counters (:meth:`CacheStats.stream_view`): per-app cycles combine the
    app's private L1/L2 filter counters with its share of the shared-LLC
    hits and misses, and miss-reduction / speed-up compare the same stream
    under the baseline scheme — i.e. how much each app gains or loses from
    the policy change *under interference*.
    """
    config = config or ExperimentConfig.default()
    reorder = reorder or config.reorder
    timing: TimingModel = config.timing
    workloads = [
        build_workload(app_name, dataset_name, reorder=reorder, config=config)
        for app_name, dataset_name in spec.pairs
    ]
    duplicated = len(set(spec.pairs)) != len(spec.pairs)

    def views(stats: CacheStats) -> List[CacheStats]:
        if spec.num_streams == 1 and not stats.stream_accesses:
            # The degenerate path delegates to the single-app simulation,
            # whose aggregates *are* stream 0's counters.
            return [stats]
        return [stats.stream_view(stream) for stream in range(spec.num_streams)]

    def cycles_for(workload: Workload, view: CacheStats) -> float:
        summary = execution_stream_summary(workload, config)
        counts = LevelCounts(
            l1_hits=summary["l1_hits"],
            l2_hits=summary["l2_hits"],
            llc_hits=view.hits,
            memory_accesses=view.misses,
        )
        return config.timing.cycles(counts)

    baseline_stats = simulate_corun(spec, baseline, config, reorder=reorder)
    baseline_views = views(baseline_stats)
    baseline_cycles = [
        cycles_for(workload, view) for workload, view in zip(workloads, baseline_views)
    ]
    points: List[DataPoint] = []
    for scheme in schemes:
        stats = (
            baseline_stats
            if scheme == baseline
            else simulate_corun(spec, scheme, config, reorder=reorder)
        )
        for stream, (workload, view) in enumerate(zip(workloads, views(stats))):
            app_name, dataset_name = spec.pairs[stream]
            cycles = cycles_for(workload, view)
            points.append(
                DataPoint(
                    app_name=f"{app_name}#{stream}" if duplicated else app_name,
                    dataset_name=dataset_name,
                    scheme=scheme,
                    stats=view,
                    cycles=cycles,
                    miss_reduction_pct=timing.miss_reduction_percent(
                        baseline_views[stream].misses, view.misses
                    ),
                    speedup_pct=timing.speedup_percent(
                        baseline_cycles[stream], cycles
                    ),
                )
            )
    return points


def _roi_summary_key(workload: Workload, config: ExperimentConfig) -> tuple:
    """Key of the ROI stream's L1/L2 counters (kind ``roisummary``)."""
    return llctrace_memo_key(*workload.key, config, workload.layout.profile.merged)


def _store_roi_summary(workload: Workload, config: ExperimentConfig, summary: dict) -> None:
    key = _roi_summary_key(workload, config)
    _ROI_SUMMARIES.setdefault(key, summary)
    memo = active_disk_memo()
    if memo is not None and not memo.contains("roisummary", key):
        memo.put("roisummary", key, summary)


def roi_stream_summary(workload: Workload, config: ExperimentConfig) -> dict:
    """Aggregate L1/L2 filter counters of the workload's ROI stream.

    Resolution order: the in-memory/on-disk ``roisummary`` entries (written
    by the fused ROI path), then a cached ``llctrace`` (whose upstream
    counters carry the same numbers), then filtering the ROI trace — so
    timing never forces the materialized LLC trace back into existence when
    a fused run already produced the counters.
    """
    key = _roi_summary_key(workload, config)
    summary = _ROI_SUMMARIES.get(key)
    if summary is not None:
        return summary
    memo = active_disk_memo()
    if memo is not None:
        summary = memo.get("roisummary", key)
        if summary is not None:
            _ROI_SUMMARIES[key] = summary
            return summary
    llc_trace = _LLC_TRACES.get(key)
    if llc_trace is None and memo is not None:
        llc_trace = memo.get("llctrace", key)
    if llc_trace is None:
        llc_trace = llc_trace_for(workload, config)
    summary = {
        "l1_hits": int(llc_trace.upstream_l1_hits),
        "l2_hits": int(llc_trace.upstream_l2_hits),
        "total_references": int(llc_trace.total_references),
    }
    _store_roi_summary(workload, config, summary)
    return summary


def _simulate_fused_roi(
    workload: Workload, policy: ReplacementPolicy, config: ExperimentConfig
) -> CacheStats:
    """ROI replay through the fused single-pass pipeline.

    Skips :func:`llc_trace_for` entirely — no keep-mask, no compacted
    address/hint/PC arrays — and leaves a ``roisummary`` behind so
    :func:`workload_cycles` can price the outcome without materializing the
    LLC trace either.
    """
    classifier = _hint_classifier(workload.layout, config.hierarchy.llc)
    fused = FusedPipeline(config.hierarchy, policy, classifier=classifier)
    for piece in iter_trace_slices(roi_trace(workload), _chunk_budget(config, None)):
        fused.feed(piece)
    results = fused.stats()
    _store_roi_summary(
        workload,
        config,
        {
            "l1_hits": int(results.l1_stats.hits),
            "l2_hits": int(results.l2_stats.hits),
            "total_references": fused.total_references,
        },
    )
    return results.llc_stats


def simulate_scheme(
    workload: Workload, scheme: str, config: ExperimentConfig,
    shared_trace: bool = False,
) -> CacheStats:
    """Memoised ROI simulation of one scheme on one workload (kind ``policy``).

    Under the ``vector`` backend, schemes with a fused kernel replay through
    :class:`~repro.fastsim.FusedPipeline` when the filtered ROI trace is not
    already cached; otherwise (or for OPT and scalar/verify runs) the staged
    filter-then-replay pipeline runs as before.  Both routes produce
    bit-identical statistics.

    ``shared_trace`` declares that other schemes will replay the same
    workload: the fused route (which regenerates the raw trace per scheme)
    is then skipped in favour of the staged path, which materializes the
    filtered ROI trace once — on the first scheme that actually computes —
    and replays every scheme from that in-memory/on-disk copy.
    """
    key = policy_memo_key(*workload.key, scheme, config, workload.layout.profile.merged)

    def compute() -> CacheStats:
        policy = scheme_policy(scheme) if scheme != "OPT" else None
        trace_key = _roi_summary_key(workload, config)
        memo = active_disk_memo()
        plan = PLANNER.plan(
            SimRequest(
                schemes=(scheme,),
                policies=(policy,) if policy is not None else (),
                backend=config.backend,
                stage=STAGE_ROI,
                hierarchy=config.hierarchy,
                consumers=2 if shared_trace else 1,
                have_memo=memo is not None,
                have_trace_cache=trace_key in _LLC_TRACES
                or (memo is not None and memo.contains("llctrace", trace_key)),
            )
        )
        if plan.route == ROUTE_FUSED:
            return _simulate_fused_roi(workload, policy, config)
        llc_trace = llc_trace_for(workload, config)
        if scheme == "OPT":
            return simulate_opt(llc_trace, config.hierarchy.llc, backend=config.backend)
        return simulate_llc_policy(
            llc_trace, policy, config.hierarchy.llc, backend=config.backend
        )

    return _memoised(_POLICY_RUNS, "policy", key, compute)


def workload_cycles(workload: Workload, stats: CacheStats, config: ExperimentConfig) -> float:
    """Execution cycles of the workload's ROI under the given LLC outcome."""
    summary = roi_stream_summary(workload, config)
    # Bypassed accesses are already counted as misses by the cache, so the
    # hit/miss split fully describes where every LLC access was served.
    counts = LevelCounts(
        l1_hits=summary["l1_hits"],
        l2_hits=summary["l2_hits"],
        llc_hits=stats.hits,
        memory_accesses=stats.misses,
    )
    return config.timing.cycles(counts)


# ---------------------------------------------------------------------------
# multi-scheme comparison (shared by Figs. 5-9)
# ---------------------------------------------------------------------------

def _maybe_fused_multi_roi(
    workload: Workload, schemes: Sequence[str], config: ExperimentConfig
) -> None:
    """Opportunistic fused multi-scheme ROI pass.

    The ROI analogue of :func:`_maybe_fused_multi_streaming`: under the
    ``fused-multi`` plan, one shared filter pass over the ROI stream feeds
    every eligible uncached scheme's replay engine, stats land in the
    ``policy`` memo and the shared L1/L2 counters in ``roisummary`` — the
    filtered ROI trace is never materialized.  Any other plan leaves the
    staged materialize-once behaviour untouched.
    """
    memo = active_disk_memo()
    merged = workload.layout.profile.merged

    def cached(scheme: str) -> bool:
        key = policy_memo_key(*workload.key, scheme, config, merged)
        return key in _POLICY_RUNS or (
            memo is not None and memo.contains("policy", key)
        )

    targets, policies = _fused_multi_targets(schemes, cached)
    if len(targets) < 2:
        return
    trace_key = _roi_summary_key(workload, config)
    plan = PLANNER.plan(
        SimRequest(
            schemes=tuple(targets),
            policies=tuple(policies),
            backend=config.backend,
            stage=STAGE_ROI,
            hierarchy=config.hierarchy,
            have_memo=memo is not None,
            have_trace_cache=trace_key in _LLC_TRACES
            or (memo is not None and memo.contains("llctrace", trace_key)),
        )
    )
    if plan.route != ROUTE_FUSED_MULTI:
        return
    classifier = _hint_classifier(workload.layout, config.hierarchy.llc)
    multi = MultiFusedPipeline(config.hierarchy, policies, classifier=classifier)
    for piece in iter_trace_slices(roi_trace(workload), _chunk_budget(config, None)):
        multi.feed(piece)
    l1_hits, l2_hits = multi.upstream_hit_counts()
    _store_roi_summary(
        workload,
        config,
        {
            "l1_hits": int(l1_hits),
            "l2_hits": int(l2_hits),
            "total_references": multi.total_references,
        },
    )
    for scheme, stats in zip(targets, multi.stats()):
        key = policy_memo_key(*workload.key, scheme, config, merged)
        _POLICY_RUNS[key] = stats
        if memo is not None:
            memo.put("policy", key, stats)


def compare_policies(
    app_names: Sequence[str],
    dataset_names: Sequence[str],
    schemes: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reorder: Optional[str] = None,
    baseline: str = "RRIP",
) -> List[DataPoint]:
    """Simulate ``schemes`` (plus the baseline) on every (app, dataset) pair.

    Returns one :class:`DataPoint` per (app, dataset, scheme) with miss
    reduction and speed-up computed against the baseline scheme, exactly as
    the paper's figures report them.
    """
    config = config or ExperimentConfig.default()
    reorder = reorder or config.reorder
    timing: TimingModel = config.timing
    # With several distinct schemes replaying one workload, the planner
    # first tries the fused multi-scheme route (one shared filter phase, N
    # replays, nothing materialized); otherwise the staged path
    # materializes the filtered ROI trace once and replays every scheme
    # from it — the per-scheme fused route would regenerate the raw trace
    # for each.
    shared = len({baseline, *schemes}) > 1
    points: List[DataPoint] = []
    for dataset_name in dataset_names:
        for app_name in app_names:
            workload = build_workload(app_name, dataset_name, reorder=reorder, config=config)
            _maybe_fused_multi_roi(workload, (baseline, *schemes), config)
            baseline_stats = simulate_scheme(workload, baseline, config, shared_trace=shared)
            baseline_cycles = workload_cycles(workload, baseline_stats, config)
            for scheme in schemes:
                stats = (
                    baseline_stats
                    if scheme == baseline
                    else simulate_scheme(workload, scheme, config, shared_trace=shared)
                )
                cycles = workload_cycles(workload, stats, config)
                points.append(
                    DataPoint(
                        app_name=app_name,
                        dataset_name=dataset_name,
                        scheme=scheme,
                        stats=stats,
                        cycles=cycles,
                        miss_reduction_pct=timing.miss_reduction_percent(
                            baseline_stats.misses, stats.misses
                        ),
                        speedup_pct=timing.speedup_percent(baseline_cycles, cycles),
                    )
                )
    return points


# ---------------------------------------------------------------------------
# task planning (sweep manifests, `repro plan explain`)
# ---------------------------------------------------------------------------

def plan_scheme_task(
    app_name: str,
    dataset_name: str,
    reorder: str,
    scheme: str,
    config: ExperimentConfig,
    streaming: bool = False,
) -> ExecutionPlan:
    """Plan one (app, dataset, scheme) task without building its workload.

    Memo keys are computable from the experiment parameters alone, so the
    memo-environment flags (cached ROI trace, persisted chunk store) are
    probed directly from the on-disk store — the sweep service embeds
    these plans in run manifests and ``repro plan explain`` answers before
    any simulation runs.  The returned plan is exactly the one the
    corresponding :func:`simulate_scheme` / :func:`simulate_scheme_streaming`
    call would execute under the same memo state.
    """
    policies = (scheme_policy(scheme),) if scheme != "OPT" else ()
    memo = active_disk_memo()
    merged = config.merged_properties
    if streaming:
        budget = _chunk_budget(config, None)
        stream_key = llcstream_summary_memo_key(
            app_name, dataset_name, reorder, config, merged
        ) + (budget,)
        have_chunk_store = memo is not None and memo.contains("llcstream", stream_key)
        have_trace_cache = False
        stage = STAGE_STREAMING
    else:
        trace_key = llctrace_memo_key(app_name, dataset_name, reorder, config, merged)
        have_trace_cache = trace_key in _LLC_TRACES or (
            memo is not None and memo.contains("llctrace", trace_key)
        )
        have_chunk_store = False
        stage = STAGE_ROI
    return PLANNER.plan(
        SimRequest(
            schemes=(scheme,),
            policies=policies,
            backend=config.backend,
            stage=stage,
            hierarchy=config.hierarchy,
            have_memo=memo is not None,
            have_chunk_store=have_chunk_store,
            have_trace_cache=have_trace_cache,
        )
    )


def plan_corun_task(
    spec: CorunSpec, scheme: str, config: ExperimentConfig
) -> ExecutionPlan:
    """Plan one co-run task (the co-run analogue of :func:`plan_scheme_task`).

    Raises :class:`ValueError` for OPT, exactly as :func:`simulate_corun`
    would.
    """
    policies = (scheme_policy(scheme),) if scheme != "OPT" else ()
    return PLANNER.plan(
        SimRequest(
            schemes=(scheme,),
            policies=policies,
            backend=config.backend,
            stage=STAGE_CORUN,
            hierarchy=config.hierarchy,
            partition=spec.partition,
            num_streams=spec.num_streams,
        )
    )


def geometric_mean_speedup(points: Sequence[DataPoint]) -> float:
    """Geometric-mean speed-up (%) across data points, as the paper's GM bars."""
    if not points:
        return 0.0
    ratios = np.array([1.0 + point.speedup_pct / 100.0 for point in points])
    return float((np.exp(np.log(ratios).mean()) - 1.0) * 100.0)


def average_miss_reduction(points: Sequence[DataPoint]) -> float:
    """Arithmetic-mean miss reduction (%) across data points."""
    if not points:
        return 0.0
    return float(np.mean([point.miss_reduction_pct for point in points]))
