"""Workload construction and trace-driven simulation.

The pipeline per (application, dataset, reordering) triple mirrors the
paper's methodology (Sec. IV):

1. generate the synthetic dataset and apply the software reordering;
2. run the application to obtain per-iteration frontiers;
3. pick the region of interest — the busiest iteration in the application's
   dominant traversal direction;
4. lay the graph's arrays out in memory and generate the ROI's reference
   stream;
5. filter the stream through the L1-D and L2 caches (these levels always use
   LRU and are therefore independent of the LLC policy under study);
6. replay the surviving LLC accesses under each replacement policy, tagging
   every access with GRASP's reuse hint derived from the Address Bound
   Registers.

Workloads, filtered traces and per-policy results are memoised so that
figures sharing the same runs (e.g. Figs. 5 and 6) do not recompute them.

Fast-path dispatch
------------------
Stages 5 and 6 exist in two implementations.  The default ``vector`` backend
(:mod:`repro.fastsim`) replays the always-LRU L1-D/L2 filters as batched
NumPy stack-distance computations, and the LLC whenever the scheme under
study has a vectorized engine — plain LRU (stack-distance), the whole RRIP
family (SRRIP/BRRIP/DRRIP/GRASP, batched set-parallel sweeps with exact PSEL
set dueling and per-access reuse hints), and since PR 4 the full comparison
matrix: SHiP-MEM, Hawkeye, Leeway, the PIN-X pinning configurations
(including BYPASS accounting) and Belady's OPT.  Only the GRASP ablation
subclasses fall back to the scalar per-access simulator, which also remains
selectable as a whole via ``backend="scalar"`` (per call),
:attr:`ExperimentConfig.backend` (per experiment) or the
``REPRO_SIM_BACKEND`` environment variable (process-wide).
The ``verify`` backend runs both paths and raises
:class:`~repro.fastsim.filter.FastSimMismatchError` unless their
hit/miss/eviction counts are identical.  Backends are bit-equivalent by
construction, so memo keys deliberately exclude the backend.

On-disk memoisation
-------------------
The three in-memory memo tables (workloads, filtered LLC traces, per-scheme
stats) can additionally be backed by a persistent store shared across
processes and invocations — see :mod:`repro.experiments.memo` for the
``<cache_dir>/v2/{workload,llctrace,policy}/<sha256-of-key>.pkl`` layout.
The store is off unless ``REPRO_CACHE_DIR`` is set or
:func:`set_disk_memo` is called; the parallel runner
(:mod:`repro.experiments.parallel`) installs it in every worker so shards
and later invocations (Figs. 5-11, Tables 1-7) reuse each other's runs.
:func:`clear_caches` drops only the in-memory tables, never the disk store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics import get_application
from repro.analytics.base import AppResult, IterationRecord
from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.config import HierarchyConfig
from repro.cache.policies import BeladyOptimal, simulate_opt_misses
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.core import AddressBoundRegisterFile, GraspClassifier
from repro.experiments.config import ExperimentConfig
from repro.experiments.memo import DiskMemo, default_cache_dir
from repro.fastsim import (
    run_filter,
    supports_vector_replay,
    vector_opt_replay,
    vector_policy_replay,
)
from repro.fastsim.dispatch import SCALAR, VECTOR, resolve_backend
from repro.fastsim.filter import assert_stats_equal
from repro.experiments.schemes import scheme_policy
from repro.graph.csr import CSRGraph
from repro.graph.datasets import get_dataset
from repro.perf.timing import LevelCounts, TimingModel
from repro.reorder import get_technique
from repro.trace import MemoryLayout, Trace, generate_iteration_trace


@dataclass
class Workload:
    """Everything needed to simulate one (app, dataset, reordering) triple."""

    app_name: str
    dataset_name: str
    reorder_name: str
    graph: CSRGraph
    app_result: AppResult
    roi: IterationRecord
    layout: MemoryLayout
    reorder_operations: float
    dominant_direction: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Identifier used in reports."""
        return (self.app_name, self.dataset_name, self.reorder_name)

    @property
    def total_edges_traversed(self) -> int:
        """Edges traversed across the whole application run (all iterations)."""
        return sum(record.edges_traversed for record in self.app_result.iterations)


@dataclass
class LLCTrace:
    """The post-L1/L2 access stream seen by the LLC."""

    byte_addresses: np.ndarray
    block_addresses: np.ndarray
    pcs: np.ndarray
    regions: np.ndarray
    hints: np.ndarray
    upstream_l1_hits: int
    upstream_l2_hits: int
    total_references: int

    def __len__(self) -> int:
        return int(self.block_addresses.shape[0])

    def level_counts(self, llc_hits: int, llc_misses: int) -> LevelCounts:
        """Per-level reference counts for the timing model."""
        return LevelCounts(
            l1_hits=self.upstream_l1_hits,
            l2_hits=self.upstream_l2_hits,
            llc_hits=llc_hits,
            memory_accesses=llc_misses,
        )


@dataclass
class DataPoint:
    """Result of simulating one scheme on one workload."""

    app_name: str
    dataset_name: str
    scheme: str
    stats: CacheStats
    cycles: float
    miss_reduction_pct: float = 0.0
    speedup_pct: float = 0.0


# ---------------------------------------------------------------------------
# memoisation
# ---------------------------------------------------------------------------

_WORKLOADS: Dict[tuple, Workload] = {}
_LLC_TRACES: Dict[tuple, LLCTrace] = {}
_POLICY_RUNS: Dict[tuple, CacheStats] = {}

# Optional persistent layer underneath the tables above.  ``None`` plus an
# unresolved flag means "look at REPRO_CACHE_DIR on first use".
_DISK_MEMO: Optional[DiskMemo] = None
_DISK_MEMO_RESOLVED = False


def set_disk_memo(memo: Optional[DiskMemo]) -> None:
    """Install (or, with ``None``, disable) the on-disk memo store."""
    global _DISK_MEMO, _DISK_MEMO_RESOLVED
    _DISK_MEMO = memo
    _DISK_MEMO_RESOLVED = True


def active_disk_memo() -> Optional[DiskMemo]:
    """The on-disk memo store in effect, resolving ``REPRO_CACHE_DIR`` lazily."""
    global _DISK_MEMO, _DISK_MEMO_RESOLVED
    if not _DISK_MEMO_RESOLVED:
        root = default_cache_dir()
        _DISK_MEMO = DiskMemo(root) if root is not None else None
        _DISK_MEMO_RESOLVED = True
    return _DISK_MEMO


def _memoised(table: Dict[tuple, object], kind: str, key: tuple, compute):
    """Look ``key`` up in memory, then on disk, computing (and storing) last."""
    if key in table:
        return table[key]
    memo = active_disk_memo()
    if memo is not None:
        value = memo.get(kind, key)
        if value is not None:
            table[key] = value
            return value
    value = compute()
    table[key] = value
    if memo is not None:
        memo.put(kind, key, value)
    return value


def clear_caches() -> None:
    """Drop the in-memory memo tables (the on-disk store, if any, persists)."""
    _WORKLOADS.clear()
    _LLC_TRACES.clear()
    _POLICY_RUNS.clear()


# ---------------------------------------------------------------------------
# workload construction
# ---------------------------------------------------------------------------

def build_workload(
    app_name: str,
    dataset_name: str,
    reorder: str = "dbg",
    config: Optional[ExperimentConfig] = None,
    merged_properties: Optional[bool] = None,
) -> Workload:
    """Build (and memoise) one workload."""
    config = config or ExperimentConfig.default()
    merged = config.merged_properties if merged_properties is None else merged_properties
    key = (app_name, dataset_name, reorder, config.scale, config.seed, merged)

    def compute() -> Workload:
        app = get_application(app_name, merged_properties=merged)
        weighted = app_name == "SSSP"
        graph = get_dataset(dataset_name, scale=config.scale, seed=config.seed, weighted=weighted)

        degree_source = "in" if app.dominant_direction == "push" else "out"
        technique = get_technique(reorder, degree_source=degree_source)
        reorder_result = technique.apply(graph)
        reordered = reorder_result.graph

        root = int(np.argmax(reordered.out_degrees))
        app_result = app.run(reordered, root=root)

        candidates = app_result.iterations_in_direction(app.dominant_direction) or app_result.iterations
        roi = max(candidates, key=lambda record: record.active_vertices)

        layout = MemoryLayout(reordered, app.access_profile())
        return Workload(
            app_name=app_name,
            dataset_name=dataset_name,
            reorder_name=reorder,
            graph=reordered,
            app_result=app_result,
            roi=roi,
            layout=layout,
            reorder_operations=reorder_result.operations,
            dominant_direction=app.dominant_direction,
        )

    return _memoised(_WORKLOADS, "workload", key, compute)


def roi_trace(workload: Workload) -> Trace:
    """Reference stream of the workload's region-of-interest iteration."""
    return generate_iteration_trace(
        workload.graph,
        workload.layout,
        workload.dominant_direction,
        frontier=workload.roi.frontier,
    )


# ---------------------------------------------------------------------------
# L1/L2 filtering and hint classification
# ---------------------------------------------------------------------------

def filter_trace(
    trace: Trace,
    hierarchy: HierarchyConfig,
    layout: Optional[MemoryLayout] = None,
    backend: Optional[str] = None,
) -> LLCTrace:
    """Run the L1-D/L2 filters over a trace and return the LLC-bound accesses.

    ``backend`` selects the implementation (``vector``/``scalar``/``verify``);
    ``None`` defers to :func:`repro.fastsim.default_backend`.  Both backends
    produce identical traces.
    """
    result = run_filter(trace, hierarchy, backend=backend)
    keep = result.keep
    byte_addresses = trace.addresses[keep]
    block_addresses = byte_addresses >> hierarchy.llc.block_offset_bits
    hints = _classify_hints(byte_addresses, layout, hierarchy.llc)
    return LLCTrace(
        byte_addresses=byte_addresses,
        block_addresses=block_addresses,
        pcs=trace.pcs[keep],
        regions=trace.regions[keep],
        hints=hints,
        upstream_l1_hits=int(result.l1_stats.hits),
        upstream_l2_hits=int(result.l2_stats.hits),
        total_references=len(trace),
    )


def _classify_hints(
    byte_addresses: np.ndarray,
    layout: Optional[MemoryLayout],
    llc_config: CacheConfig,
) -> np.ndarray:
    """Tag LLC accesses with GRASP reuse hints from the workload's ABRs."""
    abrs = AddressBoundRegisterFile(capacity=8)
    if layout is not None:
        for start, end in layout.property_array_bounds():
            abrs.configure(start, end)
    classifier = GraspClassifier(abrs, llc_size_bytes=llc_config.size_bytes)
    return classifier.classify_array(byte_addresses)


def llc_trace_for(workload: Workload, config: ExperimentConfig) -> LLCTrace:
    """Memoised L1/L2-filtered LLC trace for a workload."""
    key = (workload.key, config.scale, config.seed, config.hierarchy, workload.layout.profile.merged)
    return _memoised(
        _LLC_TRACES,
        "llctrace",
        key,
        lambda: filter_trace(
            roi_trace(workload), config.hierarchy, workload.layout, backend=config.backend
        ),
    )


# ---------------------------------------------------------------------------
# LLC simulation
# ---------------------------------------------------------------------------

def simulate_llc_policy(
    llc_trace: LLCTrace,
    policy: ReplacementPolicy,
    llc_config: CacheConfig,
    use_hints: bool = True,
    backend: Optional[str] = None,
) -> CacheStats:
    """Replay an LLC trace under one replacement policy.

    Under the ``vector`` backend, schemes with a vectorized engine — plain
    LRU, the exact RRIP-family policies (SRRIP/BRRIP/DRRIP/GRASP, with the
    trace's reuse-hint stream wired through) and the PR 4 engines for
    SHiP-MEM, Hawkeye, Leeway and PIN-X (hint and PC streams wired through)
    — dispatch to :func:`repro.fastsim.vector_policy_replay`; only the GRASP
    ablation subclasses use the scalar simulator regardless of the backend.
    """
    if type(policy) is BeladyOptimal:
        # OPT cannot run online through SetAssociativeCache: its "scalar"
        # reference is the offline loop, which simulate_opt dispatches to
        # (with the same vector/scalar/verify semantics as every policy).
        return simulate_opt(llc_trace, llc_config, backend=backend)
    mode = resolve_backend(backend)
    if mode != SCALAR and supports_vector_replay(policy):
        vector_stats = vector_policy_replay(
            policy,
            llc_trace.block_addresses,
            llc_config,
            hints=llc_trace.hints if use_hints else None,
            regions=llc_trace.regions,
            pcs=llc_trace.pcs,
        )
        if mode == VECTOR:
            return vector_stats
        scalar_stats = _scalar_llc_replay(llc_trace, policy, llc_config, use_hints)
        assert_stats_equal(scalar_stats, vector_stats, f"LLC {policy.name} replay")
        return vector_stats
    return _scalar_llc_replay(llc_trace, policy, llc_config, use_hints)


def _scalar_llc_replay(
    llc_trace: LLCTrace,
    policy: ReplacementPolicy,
    llc_config: CacheConfig,
    use_hints: bool,
) -> CacheStats:
    """Reference LLC replay: one :meth:`access_block` call per access."""
    cache = SetAssociativeCache(llc_config, policy)
    access = cache.access_block
    blocks = llc_trace.block_addresses.tolist()
    pcs = llc_trace.pcs.tolist()
    regions = llc_trace.regions.tolist()
    hints = llc_trace.hints.tolist() if use_hints else [0] * len(blocks)
    for block, pc, hint, region in zip(blocks, pcs, hints, regions):
        access(block, pc, hint, region)
    return cache.stats


def simulate_opt(
    llc_trace: LLCTrace, llc_config: CacheConfig, backend: Optional[str] = None
) -> CacheStats:
    """Belady's OPT lower bound on misses for an LLC trace.

    Dispatches like :func:`simulate_llc_policy`: the ``vector`` backend uses
    the batched next-use engine (:mod:`repro.fastsim.opt`), ``scalar`` the
    offline reference loop, and ``verify`` runs both and asserts identical
    counts.
    """
    mode = resolve_backend(backend)
    if mode == SCALAR:
        return simulate_opt_misses(llc_trace.block_addresses, llc_config)
    vector_stats = vector_opt_replay(llc_trace.block_addresses, llc_config)
    if mode == VECTOR:
        return vector_stats
    scalar_stats = simulate_opt_misses(llc_trace.block_addresses, llc_config)
    assert_stats_equal(scalar_stats, vector_stats, "LLC OPT replay")
    return vector_stats


def _run_scheme(workload: Workload, scheme: str, config: ExperimentConfig) -> CacheStats:
    """Memoised simulation of one scheme on one workload."""
    key = (workload.key, scheme, config.scale, config.seed, config.hierarchy, workload.layout.profile.merged)

    def compute() -> CacheStats:
        llc_trace = llc_trace_for(workload, config)
        if scheme == "OPT":
            return simulate_opt(llc_trace, config.hierarchy.llc, backend=config.backend)
        return simulate_llc_policy(
            llc_trace, scheme_policy(scheme), config.hierarchy.llc, backend=config.backend
        )

    return _memoised(_POLICY_RUNS, "policy", key, compute)


def workload_cycles(workload: Workload, stats: CacheStats, config: ExperimentConfig) -> float:
    """Execution cycles of the workload's ROI under the given LLC outcome."""
    llc_trace = llc_trace_for(workload, config)
    # Bypassed accesses are already counted as misses by the cache, so the
    # hit/miss split fully describes where every LLC access was served.
    counts = llc_trace.level_counts(llc_hits=stats.hits, llc_misses=stats.misses)
    return config.timing.cycles(counts)


# ---------------------------------------------------------------------------
# multi-scheme comparison (shared by Figs. 5-9)
# ---------------------------------------------------------------------------

def compare_policies(
    app_names: Sequence[str],
    dataset_names: Sequence[str],
    schemes: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reorder: Optional[str] = None,
    baseline: str = "RRIP",
) -> List[DataPoint]:
    """Simulate ``schemes`` (plus the baseline) on every (app, dataset) pair.

    Returns one :class:`DataPoint` per (app, dataset, scheme) with miss
    reduction and speed-up computed against the baseline scheme, exactly as
    the paper's figures report them.
    """
    config = config or ExperimentConfig.default()
    reorder = reorder or config.reorder
    timing: TimingModel = config.timing
    points: List[DataPoint] = []
    for dataset_name in dataset_names:
        for app_name in app_names:
            workload = build_workload(app_name, dataset_name, reorder=reorder, config=config)
            baseline_stats = _run_scheme(workload, baseline, config)
            baseline_cycles = workload_cycles(workload, baseline_stats, config)
            for scheme in schemes:
                stats = baseline_stats if scheme == baseline else _run_scheme(workload, scheme, config)
                cycles = workload_cycles(workload, stats, config)
                points.append(
                    DataPoint(
                        app_name=app_name,
                        dataset_name=dataset_name,
                        scheme=scheme,
                        stats=stats,
                        cycles=cycles,
                        miss_reduction_pct=timing.miss_reduction_percent(
                            baseline_stats.misses, stats.misses
                        ),
                        speedup_pct=timing.speedup_percent(baseline_cycles, cycles),
                    )
                )
    return points


def geometric_mean_speedup(points: Sequence[DataPoint]) -> float:
    """Geometric-mean speed-up (%) across data points, as the paper's GM bars."""
    if not points:
        return 0.0
    ratios = np.array([1.0 + point.speedup_pct / 100.0 for point in points])
    return float((np.exp(np.log(ratios).mean()) - 1.0) * 100.0)


def average_miss_reduction(points: Sequence[DataPoint]) -> float:
    """Arithmetic-mean miss reduction (%) across data points."""
    if not points:
        return 0.0
    return float(np.mean([point.miss_reduction_pct for point in points]))
