"""Figure experiments: Figs. 2, 5, 6, 7, 8, 9, 10a, 10b and 11."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    DataPoint,
    simulate_scheme,
    build_workload,
    compare_policies,
    workload_cycles,
)
from repro.experiments.schemes import (
    ABLATION_SCHEMES,
    HISTORY_SCHEMES,
    PINNING_SCHEMES,
    ROBUSTNESS_SCHEMES,
)
from repro.perf.reorder_cost import ReorderCostModel
from repro.trace.layout import REGION_PROPERTY


# ---------------------------------------------------------------------------
# Fig. 2 — LLC access / miss breakdown
# ---------------------------------------------------------------------------

def fig2_llc_breakdown(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = ("pl", "tw"),
    apps: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Fig. 2: share of LLC accesses and misses inside the Property Array.

    Run on the original (identity) vertex order with the RRIP baseline, as in
    the paper's motivation study.
    """
    config = config or ExperimentConfig.default()
    apps = apps or config.apps
    rows: List[Dict[str, object]] = []
    for dataset_name in datasets:
        for app_name in apps:
            workload = build_workload(app_name, dataset_name, reorder="identity", config=config)
            stats = simulate_scheme(workload, "RRIP", config)
            accesses = stats.accesses or 1
            property_accesses = stats.region_accesses.get(REGION_PROPERTY, 0)
            property_misses = stats.region_misses.get(REGION_PROPERTY, 0)
            rows.append(
                {
                    "dataset": dataset_name,
                    "app": app_name,
                    "property_access_pct": round(100.0 * property_accesses / accesses, 2),
                    "other_access_pct": round(100.0 * (accesses - property_accesses) / accesses, 2),
                    "property_miss_pct": round(100.0 * property_misses / accesses, 2),
                    "other_miss_pct": round(100.0 * (stats.misses - property_misses) / accesses, 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figs. 5 & 6 — history-based schemes vs GRASP (miss reduction and speed-up)
# ---------------------------------------------------------------------------

def fig5_miss_reduction(config: Optional[ExperimentConfig] = None) -> List[DataPoint]:
    """Fig. 5: LLC miss reduction over the RRIP baseline (DBG reordering)."""
    config = config or ExperimentConfig.default()
    return compare_policies(
        config.apps, config.high_skew_datasets, HISTORY_SCHEMES, config=config
    )


def fig6_speedup(config: Optional[ExperimentConfig] = None) -> List[DataPoint]:
    """Fig. 6: speed-up over the RRIP baseline for the same schemes as Fig. 5."""
    return fig5_miss_reduction(config)


# ---------------------------------------------------------------------------
# Fig. 7 — GRASP feature ablation
# ---------------------------------------------------------------------------

def fig7_ablation(config: Optional[ExperimentConfig] = None) -> List[DataPoint]:
    """Fig. 7: RRIP+Hints → GRASP (Insertion-Only) → full GRASP."""
    config = config or ExperimentConfig.default()
    return compare_policies(
        config.apps, config.high_skew_datasets, ABLATION_SCHEMES, config=config
    )


# ---------------------------------------------------------------------------
# Figs. 8 & 9 — pinning-based schemes
# ---------------------------------------------------------------------------

def fig8_pinning(config: Optional[ExperimentConfig] = None) -> List[DataPoint]:
    """Fig. 8: PIN-25/50/75/100 vs GRASP on the high-skew datasets."""
    config = config or ExperimentConfig.default()
    return compare_policies(
        config.apps, config.high_skew_datasets, PINNING_SCHEMES, config=config
    )


def fig9_low_skew(config: Optional[ExperimentConfig] = None) -> List[DataPoint]:
    """Fig. 9: robustness of PIN-75/PIN-100/GRASP on low-/no-skew datasets."""
    config = config or ExperimentConfig.default()
    return compare_policies(
        config.apps, config.adversarial_datasets, ROBUSTNESS_SCHEMES, config=config
    )


# ---------------------------------------------------------------------------
# Fig. 10a — net speed-up of software reordering techniques
# ---------------------------------------------------------------------------

def fig10a_reordering_speedup(
    config: Optional[ExperimentConfig] = None,
    techniques: Sequence[str] = ("sort", "hubsort", "dbg", "gorder"),
    cost_model: Optional[ReorderCostModel] = None,
) -> List[Dict[str, object]]:
    """Fig. 10a: end-to-end speed-up of reordering including reordering cost.

    Application time is the simulated ROI time scaled to the whole run (all
    iterations of all traversals); the reordering time comes from the
    operation-count cost model.  Speed-ups are relative to the original
    (identity) vertex order, as in the paper.
    """
    config = config or ExperimentConfig.default()
    cost_model = cost_model or ReorderCostModel()
    rows: List[Dict[str, object]] = []
    for dataset_name in config.high_skew_datasets:
        for app_name in config.apps:
            baseline = build_workload(app_name, dataset_name, reorder="identity", config=config)
            baseline_cycles = _whole_run_cycles(baseline, config)
            row: Dict[str, object] = {"dataset": dataset_name, "app": app_name}
            for technique in techniques:
                workload = build_workload(app_name, dataset_name, reorder=technique, config=config)
                app_cycles = _whole_run_cycles(workload, config)
                row[technique] = round(
                    cost_model.net_speedup_percent(
                        baseline_cycles, app_cycles, workload.reorder_operations
                    ),
                    2,
                )
            rows.append(row)
    return rows


def _whole_run_cycles(workload, config: ExperimentConfig) -> float:
    """Approximate cycles of the full application run from its ROI.

    The ROI iteration's cycle count is scaled by the ratio of edges traversed
    over the whole run to edges traversed in the ROI — the same
    "simulate one iteration, reason about the run" methodology as the paper.
    """
    stats = simulate_scheme(workload, "RRIP", config)
    roi_cycles = workload_cycles(workload, stats, config)
    roi_edges = max(1, workload.roi.edges_traversed)
    scale_factor = max(1.0, workload.total_edges_traversed / roi_edges)
    return roi_cycles * scale_factor


# ---------------------------------------------------------------------------
# Fig. 10b — GRASP on top of each reordering technique
# ---------------------------------------------------------------------------

def fig10b_grasp_over_reorderings(
    config: Optional[ExperimentConfig] = None,
    techniques: Sequence[str] = ("sort", "hubsort", "dbg", "gorder"),
) -> List[Dict[str, object]]:
    """Fig. 10b: GRASP speed-up over RRIP when paired with each reordering."""
    config = config or ExperimentConfig.default()
    rows: List[Dict[str, object]] = []
    for dataset_name in config.high_skew_datasets:
        for app_name in config.apps:
            row: Dict[str, object] = {"dataset": dataset_name, "app": app_name}
            for technique in techniques:
                points = compare_policies(
                    [app_name], [dataset_name], ["GRASP"], config=config, reorder=technique
                )
                row[technique] = round(points[0].speedup_pct, 2)
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — RRIP / GRASP / OPT miss elimination over LRU
# ---------------------------------------------------------------------------

def fig11_vs_opt(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Fig. 11: percentage of LLC misses eliminated over LRU."""
    config = config or ExperimentConfig.default()
    rows: List[Dict[str, object]] = []
    for dataset_name in config.high_skew_datasets:
        for app_name in config.apps:
            workload = build_workload(app_name, dataset_name, reorder=config.reorder, config=config)
            lru = simulate_scheme(workload, "LRU", config)
            row: Dict[str, object] = {"dataset": dataset_name, "app": app_name}
            for scheme in ("RRIP", "GRASP", "OPT"):
                stats = simulate_scheme(workload, scheme, config)
                row[scheme] = round(
                    config.timing.miss_reduction_percent(lru.misses, stats.misses), 2
                )
            rows.append(row)
    return rows


def summarize_fig11(rows: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Average miss elimination per scheme plus GRASP's effectiveness vs OPT."""
    if not rows:
        return {"RRIP": 0.0, "GRASP": 0.0, "OPT": 0.0, "grasp_vs_opt_pct": 0.0}
    summary = {
        scheme: float(np.mean([row[scheme] for row in rows])) for scheme in ("RRIP", "GRASP", "OPT")
    }
    summary["grasp_vs_opt_pct"] = (
        100.0 * summary["GRASP"] / summary["OPT"] if summary["OPT"] else 0.0
    )
    return summary
