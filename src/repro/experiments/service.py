"""Fault-tolerant distributed sweep service.

:func:`run_sweep` decomposes a :func:`~repro.experiments.runner.compare_policies`
sweep into a task DAG —

    workload-build  →  L1/L2 filter  →  per-scheme LLC replay
    (per app/dataset pair)  (per pair)     (per pair × scheme)

— and drives it through a dependency-aware :class:`Scheduler` over a
pluggable :class:`~repro.experiments.queue.WorkerBackend` (in-process
``inline``, :class:`~concurrent.futures.ProcessPoolExecutor`-backed
``process``; the interface admits remote transports).  The scheduler does
per-worker queueing with work stealing, bounded retry with exponential
backoff on worker death or transient errors, and heartbeat-based detection
of hung or killed workers.

**Tasks are content-addressed by their memo entry.**  A task's id is the
digest of its :mod:`repro.experiments.memo` key (the entry's filename stem),
and a task *is complete* exactly when a readable entry exists in the shared
:class:`~repro.experiments.memo.DiskMemo` store.  Three properties fall out:

* **resume** — ``repro sweep --resume RUN_ID`` rebuilds the DAG and only
  executes tasks whose entries are missing (or unreadable);
* **cross-client dedup** — overlapping sweeps from concurrent clients
  converge on the same entries, so work done by one client is a cache hit
  for every other;
* **invisibility** — results are *assembled* by the ordinary serial runner
  reading the store, so any task order, any worker count, and any failure
  pattern produce bit-identical :class:`~repro.experiments.runner.DataPoint`
  sequences.  Scheduling can only change how fast the numbers arrive, never
  the numbers.

Every run writes a JSON manifest (``<cache_dir>/runs/<run_id>/manifest.json``)
recording the spec, per-task status/attempt history and every
:class:`~repro.experiments.queue.FailureEvent`, and the manifest is written
*before* execution starts so a hard-killed run remains resumable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.memo import DiskMemo, default_cache_dir, key_digest
from repro.experiments.queue import (
    HEARTBEAT_TIMEOUT,
    TASK_DIED,
    TASK_FAILED,
    TASK_OK,
    WORKER_DIED,
    FailureEvent,
    InlineBackend,
    ProcessPoolBackend,
    RetryPolicy,
    Task,
    WorkerBackend,
    WorkQueue,
)
from repro.experiments.runner import (
    DataPoint,
    build_workload,
    compare_policies,
    compare_policies_streaming,
    iter_llc_chunks,
    llc_trace_for,
    llcstream_summary_memo_key,
    llctrace_memo_key,
    plan_scheme_task,
    policy_memo_key,
    policystream_memo_key,
    set_disk_memo,
    simulate_scheme,
    simulate_scheme_streaming,
    workload_memo_key,
)
from repro.fastsim.dispatch import set_default_backend
from repro.fastsim.kernels import THREADS_ENV_VAR
from repro.perf.timing import TimingModel


# ---------------------------------------------------------------------------
# sweep specification and task-DAG construction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepSpec:
    """What to sweep: the cartesian product the serial runner would iterate."""

    apps: Tuple[str, ...]
    datasets: Tuple[str, ...]
    schemes: Tuple[str, ...]
    reorder: Optional[str] = None
    baseline: str = "RRIP"
    streaming: bool = False

    def resolved_reorder(self, config: ExperimentConfig) -> str:
        """The reordering in effect (spec override, else config default)."""
        return self.reorder or config.reorder

    def all_schemes(self) -> Tuple[str, ...]:
        """Schemes to simulate, baseline first, order-preserving dedup."""
        return tuple(dict.fromkeys((self.baseline,) + tuple(self.schemes)))

    def to_json(self) -> Dict[str, Any]:
        return {
            "apps": list(self.apps),
            "datasets": list(self.datasets),
            "schemes": list(self.schemes),
            "reorder": self.reorder,
            "baseline": self.baseline,
            "streaming": self.streaming,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SweepSpec":
        return cls(
            apps=tuple(data["apps"]),
            datasets=tuple(data["datasets"]),
            schemes=tuple(data["schemes"]),
            reorder=data.get("reorder"),
            baseline=data.get("baseline", "RRIP"),
            streaming=bool(data.get("streaming", False)),
        )


# Worker-side task bodies.  Module-level (picklable for the process backend);
# each installs the shared DiskMemo so results land in the content-addressed
# store, which is both the task's output channel and its completion marker.
# Values returned to the scheduler are deliberately tiny — real results
# travel through the store, not the transport.

def _worker_setup(cache_dir: str, config: ExperimentConfig) -> None:
    # Sweep workers already occupy one core each; keep the fused pipeline's
    # filter threading out of the picture (results are thread-invariant).
    os.environ[THREADS_ENV_VAR] = "1"
    set_disk_memo(DiskMemo(Path(cache_dir)))
    if config.backend:
        set_default_backend(config.backend)


def exec_workload_task(
    cache_dir: str, app: str, dataset: str, reorder: str, config: ExperimentConfig
) -> str:
    """Build (and persist) one workload."""
    _worker_setup(cache_dir, config)
    build_workload(app, dataset, reorder=reorder, config=config)
    return "workload"


def exec_filter_task(
    cache_dir: str, app: str, dataset: str, reorder: str, config: ExperimentConfig
) -> str:
    """Filter one workload's ROI trace through L1/L2 (one-shot pipeline)."""
    _worker_setup(cache_dir, config)
    workload = build_workload(app, dataset, reorder=reorder, config=config)
    llc_trace_for(workload, config)
    return "llctrace"


def exec_stream_filter_task(
    cache_dir: str, app: str, dataset: str, reorder: str, config: ExperimentConfig
) -> str:
    """Filter one workload's full execution, chunk by chunk (streaming).

    Draining :func:`iter_llc_chunks` persists every ``llcchunk`` entry and
    the ``llcstream`` manifests; per-chunk entries already in the store are
    served, not recomputed, so a retried or resumed filter task only pays
    for the missing tail.
    """
    _worker_setup(cache_dir, config)
    workload = build_workload(app, dataset, reorder=reorder, config=config)
    for _ in iter_llc_chunks(workload, config):
        pass
    return "llcstream"


def exec_scheme_task(
    cache_dir: str, app: str, dataset: str, reorder: str,
    config: ExperimentConfig, scheme: str,
) -> str:
    """Replay one scheme over one pair's filtered ROI trace."""
    _worker_setup(cache_dir, config)
    workload = build_workload(app, dataset, reorder=reorder, config=config)
    simulate_scheme(workload, scheme, config)
    return "policy"


def exec_scheme_streaming_task(
    cache_dir: str, app: str, dataset: str, reorder: str,
    config: ExperimentConfig, scheme: str,
) -> str:
    """Replay one scheme over one pair's full-execution stream."""
    _worker_setup(cache_dir, config)
    workload = build_workload(app, dataset, reorder=reorder, config=config)
    simulate_scheme_streaming(workload, scheme, config)
    return "policystream"


def sweep_tasks(spec: SweepSpec, config: ExperimentConfig, cache_dir: Path | str) -> List[Task]:
    """Decompose a sweep into its content-addressed task DAG."""
    reorder = spec.resolved_reorder(config)
    cache = str(cache_dir)
    tasks: Dict[str, Task] = {}
    for dataset in spec.datasets:
        for app in spec.apps:
            pair_args = (cache, app, dataset, reorder, config)
            workload_key = workload_memo_key(app, dataset, reorder, config)
            workload_id = key_digest(workload_key)
            tasks.setdefault(workload_id, Task(
                task_id=workload_id,
                fn=exec_workload_task,
                args=pair_args,
                kind="workload",
                label=f"workload {app}/{dataset}",
                store_key=workload_key,
            ))
            if spec.streaming:
                filter_key = llcstream_summary_memo_key(app, dataset, reorder, config)
                filter_fn, filter_kind = exec_stream_filter_task, "llcstream"
            else:
                filter_key = llctrace_memo_key(app, dataset, reorder, config)
                filter_fn, filter_kind = exec_filter_task, "llctrace"
            filter_id = key_digest(filter_key)
            tasks.setdefault(filter_id, Task(
                task_id=filter_id,
                fn=filter_fn,
                args=pair_args,
                deps=(workload_id,),
                kind=filter_kind,
                label=f"filter {app}/{dataset}",
                store_key=filter_key,
            ))
            for scheme in spec.all_schemes():
                if spec.streaming:
                    scheme_key = policystream_memo_key(app, dataset, reorder, scheme, config)
                    scheme_fn, scheme_kind = exec_scheme_streaming_task, "policystream"
                else:
                    scheme_key = policy_memo_key(app, dataset, reorder, scheme, config)
                    scheme_fn, scheme_kind = exec_scheme_task, "policy"
                scheme_id = key_digest(scheme_key)
                tasks.setdefault(scheme_id, Task(
                    task_id=scheme_id,
                    fn=scheme_fn,
                    args=pair_args + (scheme,),
                    deps=(filter_id,),
                    kind=scheme_kind,
                    label=f"{scheme} {app}/{dataset}",
                    store_key=scheme_key,
                ))
    return list(tasks.values())


# ---------------------------------------------------------------------------
# completion stores
# ---------------------------------------------------------------------------

class InMemoryTaskStore:
    """Completion store for generic (non-memo) task graphs — used by tests."""

    def __init__(self, done: Optional[Sequence[str]] = None) -> None:
        self.done = set(done or ())

    def is_done(self, task: Task) -> bool:
        return task.task_id in self.done

    def note_done(self, task: Task, value: Any) -> None:
        self.done.add(task.task_id)


class MemoTaskStore:
    """Completion store backed by the content-addressed DiskMemo.

    A task is done iff its memo entry exists *and loads* — corrupt or
    truncated entries look incomplete, so schedulers recompute them just as
    the memoised serial runner would.  ``note_done`` is a no-op: the worker
    that executed the task already persisted the entry.
    """

    def __init__(self, memo: DiskMemo) -> None:
        self.memo = memo

    def is_done(self, task: Task) -> bool:
        if task.store_key is None:
            return False
        return self.memo.contains(task.kind, task.store_key)

    def note_done(self, task: Task, value: Any) -> None:
        pass


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------

WAITING = "waiting"
QUEUED = "queued"
RUNNING = "running"
BACKOFF = "backoff"
DONE = "done"
FAILED = "failed"


@dataclass
class TaskRecord:
    """Mutable scheduling state of one task."""

    task: Task
    status: str = WAITING
    attempts: int = 0
    cached: bool = False
    worker: Optional[int] = None
    not_before: float = 0.0
    error: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.task.task_id,
            "kind": self.task.kind,
            "label": self.task.label,
            "status": self.status,
            "attempts": self.attempts,
            "cached": self.cached,
            "worker": self.worker,
            "error": self.error,
        }


@dataclass
class SchedulerReport:
    """Counters and outcomes of one scheduler run."""

    executed: int = 0
    cached: int = 0
    retries: int = 0
    worker_deaths: int = 0
    task_errors: int = 0
    heartbeat_timeouts: int = 0
    steals: int = 0
    failed: List[str] = field(default_factory=list)
    events: List[FailureEvent] = field(default_factory=list)
    elapsed: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["events"] = [event.to_json() for event in self.events]
        return data


class SchedulerError(RuntimeError):
    """Raised on malformed task graphs (cycles, unknown dependencies)."""


class Scheduler:
    """Dependency-aware task scheduler over a :class:`WorkerBackend`.

    Single-threaded and poll-driven: each tick it releases due backoffs,
    fills every idle worker from the work-stealing queue, drains backend
    outcomes, and ages heartbeats.  The clock and sleep functions are
    injectable so tests drive it on a virtual clock; with the defaults it
    runs on wall time.

    Guarantees (the property-test surface):

    * a task is dispatched only after all its dependencies completed;
    * a task that completed successfully is never dispatched again;
    * a worker never idles while any worker's queue holds a ready task
      (work stealing);
    * a task whose completion store already marks it done is never
      dispatched at all (resume / cross-client dedup);
    * worker deaths, transient errors and heartbeat timeouts retry with
      exponential backoff up to ``retry.max_attempts`` executions, after
      which the task — and transitively its dependents — fail without
      taking the rest of the run down.
    """

    def __init__(
        self,
        tasks: Sequence[Task],
        backend: WorkerBackend,
        workers: int,
        store: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
        heartbeat_timeout: float = 300.0,
        tick: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        on_event: Optional[Callable[[str, TaskRecord], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.records: Dict[str, TaskRecord] = {}
        for task in tasks:
            if task.task_id in self.records:
                raise SchedulerError(f"duplicate task id {task.task_id!r}")
            self.records[task.task_id] = TaskRecord(task=task)
        self._check_graph()
        self.backend = backend
        self.workers = workers
        self.store = store if store is not None else InMemoryTaskStore()
        self.retry = retry or RetryPolicy()
        self.heartbeat_timeout = heartbeat_timeout
        self.tick = tick
        self.clock = clock
        self.sleep = sleep
        self.on_event = on_event
        self.queue = WorkQueue(workers)
        self.report = SchedulerReport()
        self._dependents: Dict[str, List[str]] = {tid: [] for tid in self.records}
        for record in self.records.values():
            for dep in record.task.deps:
                self._dependents[dep].append(record.task.task_id)
        self._busy: Dict[int, int] = {}  # worker -> handle
        self._running: Dict[int, Tuple[str, int, float]] = {}  # handle -> (tid, worker, at)

    def _check_graph(self) -> None:
        indegree = {}
        for tid, record in self.records.items():
            for dep in record.task.deps:
                if dep not in self.records:
                    raise SchedulerError(f"task {tid!r} depends on unknown task {dep!r}")
            indegree[tid] = len(set(record.task.deps))
        frontier = [tid for tid, degree in indegree.items() if degree == 0]
        seen = 0
        while frontier:
            tid = frontier.pop()
            seen += 1
            for other, record in self.records.items():
                if tid in record.task.deps:
                    indegree[other] -= 1
                    if indegree[other] == 0:
                        frontier.append(other)
        if seen != len(self.records):
            raise SchedulerError("task graph contains a cycle")

    # -- state transitions --------------------------------------------------

    def _emit(self, phase: str, record: TaskRecord) -> None:
        if self.on_event is not None:
            self.on_event(phase, record)

    def _deps_done(self, record: TaskRecord) -> bool:
        return all(self.records[dep].status == DONE for dep in record.task.deps)

    def _enqueue_if_ready(self, record: TaskRecord) -> None:
        if record.status == WAITING and self._deps_done(record):
            record.status = QUEUED
            self.queue.push(record.task)

    def _complete(self, record: TaskRecord, cached: bool) -> None:
        record.status = DONE
        record.cached = cached
        if cached:
            self.report.cached += 1
        else:
            self.report.executed += 1
        self._emit("cached" if cached else "done", record)
        for dependent in self._dependents[record.task.task_id]:
            self._enqueue_if_ready(self.records[dependent])

    def _fail_dependents(self, record: TaskRecord) -> None:
        for dependent_id in self._dependents[record.task.task_id]:
            dependent = self.records[dependent_id]
            if dependent.status in (DONE, FAILED):
                continue
            dependent.status = FAILED
            dependent.error = f"dependency failed: {record.task.label or record.task.task_id}"
            self.report.failed.append(dependent_id)
            self._emit("failed", dependent)
            self._fail_dependents(dependent)

    def _fail_attempt(self, record: TaskRecord, event: FailureEvent) -> None:
        self.report.events.append(event)
        if event.kind == HEARTBEAT_TIMEOUT:
            self.report.heartbeat_timeouts += 1
        elif event.kind in (WORKER_DIED,):
            self.report.worker_deaths += 1
        else:
            self.report.task_errors += 1
        record.error = event.detail
        if record.attempts >= self.retry.max_attempts:
            record.status = FAILED
            self.report.failed.append(record.task.task_id)
            self._emit("failed", record)
            self._fail_dependents(record)
            return
        record.status = BACKOFF
        record.not_before = self.clock() + self.retry.delay(record.attempts)
        self.report.retries += 1
        self._emit("retry", record)

    # -- the loop -----------------------------------------------------------

    def _unfinished(self) -> bool:
        return any(
            record.status not in (DONE, FAILED) for record in self.records.values()
        )

    def run(self) -> SchedulerReport:
        """Drive the graph to completion; returns the run's counters."""
        started = self.clock()
        for record in self.records.values():
            if self.store.is_done(record.task):
                record.status = DONE
                record.cached = True
                self.report.cached += 1
                self._emit("cached", record)
        for record in self.records.values():
            self._enqueue_if_ready(record)
        self.backend.start(self.workers)
        try:
            while self._unfinished():
                progressed = False
                now = self.clock()
                # Release retries whose backoff elapsed.
                for record in self.records.values():
                    if record.status == BACKOFF and now >= record.not_before:
                        record.status = QUEUED
                        self.queue.push(record.task)
                        progressed = True
                # Fill idle workers (pop() steals when the local queue is dry).
                for worker in range(self.workers):
                    if worker in self._busy:
                        continue
                    task = self.queue.pop(worker)
                    if task is None:
                        break
                    record = self.records[task.task_id]
                    record.attempts += 1
                    record.status = RUNNING
                    record.worker = worker
                    handle = self.backend.submit(worker, task, record.attempts)
                    self._busy[worker] = handle
                    self._running[handle] = (task.task_id, worker, self.clock())
                    self._emit("dispatch", record)
                    progressed = True
                # Drain completions.
                for outcome in self.backend.poll():
                    if outcome.handle not in self._running:
                        continue  # cancelled earlier; a retry owns the task now
                    task_id, worker, _ = self._running.pop(outcome.handle)
                    self._busy.pop(worker, None)
                    record = self.records[task_id]
                    if outcome.status == TASK_OK:
                        self.store.note_done(record.task, outcome.value)
                        self._complete(record, cached=False)
                    else:
                        kind = WORKER_DIED if outcome.status == TASK_DIED else TASK_FAILED
                        self._fail_attempt(record, FailureEvent(
                            kind=kind,
                            task_id=task_id,
                            label=record.task.label,
                            worker=worker,
                            attempt=record.attempts,
                            detail=outcome.error,
                        ))
                    progressed = True
                # Age heartbeats of whatever is still in flight.
                now = self.clock()
                for handle, (task_id, worker, dispatched_at) in list(self._running.items()):
                    age = self.backend.heartbeat_age(handle)
                    if age is None:
                        age = now - dispatched_at
                    if age <= self.heartbeat_timeout:
                        continue
                    self.backend.cancel(handle)
                    self._running.pop(handle, None)
                    self._busy.pop(worker, None)
                    record = self.records[task_id]
                    self._fail_attempt(record, FailureEvent(
                        kind=HEARTBEAT_TIMEOUT,
                        task_id=task_id,
                        label=record.task.label,
                        worker=worker,
                        attempt=record.attempts,
                        detail=f"no heartbeat for {age:.1f}s (limit {self.heartbeat_timeout:.1f}s)",
                    ))
                    progressed = True
                if not progressed:
                    if not self._running and self.queue.pending() == 0 and not any(
                        record.status == BACKOFF for record in self.records.values()
                    ):
                        stuck = [
                            record.task.task_id
                            for record in self.records.values()
                            if record.status not in (DONE, FAILED)
                        ]
                        raise SchedulerError(f"scheduler stalled with tasks {stuck!r}")
                    self.sleep(self.tick)
        finally:
            self.backend.close()
        self.report.steals = self.queue.steals
        self.report.elapsed = self.clock() - started
        return self.report


# ---------------------------------------------------------------------------
# config (de)serialization for the run manifest
# ---------------------------------------------------------------------------

def config_to_json(config: ExperimentConfig) -> Dict[str, Any]:
    """JSON form of an :class:`ExperimentConfig`, sufficient to resume a run."""
    return {
        "scale": config.scale,
        "seed": config.seed,
        "reorder": config.reorder,
        "merged_properties": config.merged_properties,
        "backend": config.backend,
        "chunk_accesses": config.chunk_accesses,
        "apps": list(config.apps),
        "high_skew_datasets": list(config.high_skew_datasets),
        "adversarial_datasets": list(config.adversarial_datasets),
        "hierarchy": {
            level: dataclasses.asdict(getattr(config.hierarchy, level))
            for level in ("l1", "l2", "llc")
        },
        "timing": dataclasses.asdict(config.timing),
    }


def config_from_json(data: Dict[str, Any]) -> ExperimentConfig:
    """Rebuild the exact config a manifest was written with."""
    hierarchy = HierarchyConfig(
        **{level: CacheConfig(**fields) for level, fields in data["hierarchy"].items()}
    )
    return ExperimentConfig(
        scale=data["scale"],
        hierarchy=hierarchy,
        seed=data["seed"],
        reorder=data["reorder"],
        apps=tuple(data["apps"]),
        high_skew_datasets=tuple(data["high_skew_datasets"]),
        adversarial_datasets=tuple(data["adversarial_datasets"]),
        timing=TimingModel(**data["timing"]),
        merged_properties=data["merged_properties"],
        backend=data["backend"],
        chunk_accesses=data["chunk_accesses"],
    )


# ---------------------------------------------------------------------------
# run manifest
# ---------------------------------------------------------------------------

def runs_root(cache_dir: Path | str) -> Path:
    """Directory holding run manifests under a cache root."""
    return Path(cache_dir) / "runs"


def manifest_path(cache_dir: Path | str, run_id: str) -> Path:
    return runs_root(cache_dir) / run_id / "manifest.json"


def sweep_plans(spec: SweepSpec, config: ExperimentConfig) -> Dict[str, Any]:
    """Execution plans for every simulated task of a sweep, manifest-ready.

    One :meth:`~repro.fastsim.plan.ExecutionPlan.to_json` entry per
    (app, dataset, scheme) replay task, keyed ``app/dataset/scheme``.
    Plans are computed from the experiment parameters and the current memo
    state alone (no workload is built), so they can be written before
    execution starts — the same planning the workers will do when the
    tasks actually run.
    """
    reorder = spec.resolved_reorder(config)
    plans: Dict[str, Any] = {}
    for dataset in spec.datasets:
        for app in spec.apps:
            for scheme in spec.all_schemes():
                plan = plan_scheme_task(
                    app, dataset, reorder, scheme, config, streaming=spec.streaming
                )
                plans[f"{app}/{dataset}/{scheme}"] = plan.to_json()
    return plans


def _write_manifest(
    path: Path,
    run_id: str,
    spec: SweepSpec,
    config: ExperimentConfig,
    workers: int,
    backend_name: str,
    status: str,
    scheduler: Optional[Scheduler] = None,
    resumes: int = 0,
) -> None:
    payload: Dict[str, Any] = {
        "run_id": run_id,
        "updated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "status": status,
        "resumes": resumes,
        "workers": workers,
        "worker_backend": backend_name,
        "spec": spec.to_json(),
        "config": config_to_json(config),
        "plans": sweep_plans(spec, config),
    }
    if scheduler is not None:
        payload["counters"] = scheduler.report.to_json()
        payload["counters"].pop("events", None)
        payload["events"] = [event.to_json() for event in scheduler.report.events]
        payload["tasks"] = [record.to_json() for record in scheduler.records.values()]
    else:
        payload["counters"] = {}
        payload["events"] = []
        payload["tasks"] = []
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)


def load_manifest(cache_dir: Path | str, run_id: str) -> Dict[str, Any]:
    """Load a run manifest (raises ``FileNotFoundError`` for unknown runs)."""
    return json.loads(manifest_path(cache_dir, run_id).read_text())


# ---------------------------------------------------------------------------
# the service entry points
# ---------------------------------------------------------------------------

class SweepError(RuntimeError):
    """A sweep finished with permanently failed tasks."""

    def __init__(self, run_id: str, manifest: Path, failed: Sequence[str]) -> None:
        super().__init__(
            f"sweep {run_id} failed: {len(failed)} task(s) exhausted retries "
            f"(manifest: {manifest})"
        )
        self.run_id = run_id
        self.manifest = manifest
        self.failed = list(failed)


@dataclass
class SweepResult:
    """Everything a sweep run produced."""

    run_id: str
    points: List[DataPoint]
    report: SchedulerReport
    manifest: Path
    spec: SweepSpec
    config: ExperimentConfig


def _default_workers(num_tasks: int, workers: Optional[int]) -> int:
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
        else:
            workers = os.cpu_count() or 1
    return max(1, min(workers, max(1, num_tasks)))


def _make_backend(
    worker_backend: WorkerBackend | str,
    cache_root: Path,
    run_dir: Path,
    config: ExperimentConfig,
) -> WorkerBackend:
    if isinstance(worker_backend, WorkerBackend):
        return worker_backend
    if worker_backend == "inline":
        return InlineBackend()
    if worker_backend == "process":
        return ProcessPoolBackend(
            initializer=_worker_setup,
            initargs=(str(cache_root), config),
            heartbeat_dir=run_dir / "heartbeats",
        )
    raise ValueError(
        f"unknown worker backend {worker_backend!r}; expected 'inline', 'process' "
        "or a WorkerBackend instance"
    )


def run_sweep(
    spec: SweepSpec,
    config: Optional[ExperimentConfig] = None,
    cache_dir: Optional[Path | str] = None,
    workers: Optional[int] = None,
    worker_backend: WorkerBackend | str = "process",
    run_id: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    heartbeat_timeout: float = 300.0,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    tick: float = 0.02,
    on_event: Optional[Callable[[str, TaskRecord], None]] = None,
    _resumes: int = 0,
) -> SweepResult:
    """Run one sweep through the fault-tolerant scheduler.

    Requires a cache directory (argument or ``REPRO_CACHE_DIR``): the
    content-addressed store is the service's result channel, completion
    marker and dedup point.  Raises :class:`SweepError` when tasks exhaust
    their retries; any other scheduling turbulence (worker deaths, heartbeat
    timeouts, corrupt store entries) is absorbed and reported in the
    manifest without affecting the returned :class:`DataPoint` values.
    """
    config = config or ExperimentConfig.default()
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if root is None:
        raise ValueError(
            "run_sweep needs a cache directory (cache_dir= or REPRO_CACHE_DIR): "
            "the on-disk memo store is where task results live"
        )
    memo = DiskMemo(root)
    set_disk_memo(memo)
    run_id = run_id or f"{time.strftime('%Y%m%d-%H%M%S')}-{uuid.uuid4().hex[:8]}"
    run_dir = runs_root(root) / run_id
    tasks = sweep_tasks(spec, config, root)
    worker_count = _default_workers(len(tasks), workers)
    backend = _make_backend(worker_backend, root, run_dir, config)
    scheduler = Scheduler(
        tasks,
        backend,
        worker_count,
        store=MemoTaskStore(memo),
        retry=retry,
        heartbeat_timeout=heartbeat_timeout,
        tick=tick,
        clock=clock,
        sleep=sleep,
        on_event=on_event,
    )
    path = manifest_path(root, run_id)
    # Written before execution so a hard-killed run is still resumable.
    _write_manifest(
        path, run_id, spec, config, worker_count, backend.name, "running",
        scheduler, resumes=_resumes,
    )
    status = "interrupted"
    try:
        scheduler.run()
        status = "failed" if scheduler.report.failed else "completed"
    finally:
        _write_manifest(
            path, run_id, spec, config, worker_count, backend.name, status,
            scheduler, resumes=_resumes,
        )
    if scheduler.report.failed:
        raise SweepError(run_id, path, scheduler.report.failed)
    assemble = compare_policies_streaming if spec.streaming else compare_policies
    points = assemble(
        spec.apps,
        spec.datasets,
        spec.schemes,
        config=config,
        reorder=spec.reorder,
        baseline=spec.baseline,
    )
    return SweepResult(
        run_id=run_id,
        points=points,
        report=scheduler.report,
        manifest=path,
        spec=spec,
        config=config,
    )


def resume_sweep(
    run_id: str,
    cache_dir: Optional[Path | str] = None,
    **overrides: Any,
) -> SweepResult:
    """Resume a sweep from its manifest.

    Rebuilds the task DAG from the recorded spec/config; every task whose
    memo entry already exists is served as a cache hit, so only incomplete
    (or corrupt) tasks execute.  Runtime knobs (``workers``,
    ``worker_backend``, ``retry``, ...) may be overridden — they cannot
    change results, only scheduling.
    """
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if root is None:
        raise ValueError("resume_sweep needs a cache directory (cache_dir= or REPRO_CACHE_DIR)")
    manifest = load_manifest(root, run_id)
    spec = SweepSpec.from_json(manifest["spec"])
    config = config_from_json(manifest["config"])
    overrides.setdefault("workers", manifest.get("workers"))
    return run_sweep(
        spec,
        config=config,
        cache_dir=root,
        run_id=run_id,
        _resumes=int(manifest.get("resumes", 0)) + 1,
        **overrides,
    )


__all__ = [
    "InMemoryTaskStore",
    "MemoTaskStore",
    "Scheduler",
    "SchedulerError",
    "SchedulerReport",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "TaskRecord",
    "config_from_json",
    "config_to_json",
    "load_manifest",
    "manifest_path",
    "resume_sweep",
    "run_sweep",
    "runs_root",
    "sweep_plans",
    "sweep_tasks",
]
