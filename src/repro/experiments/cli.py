"""``repro`` command line — resumable figure/table sweeps.

::

    repro sweep --apps PR --datasets lj,pl --schemes RRIP,GRASP --preset smoke
    repro sweep --figure fig5                       # a whole paper figure
    repro sweep --apps PR --graph file:web-Google.txt.gz --schemes RRIP,GRASP
    repro sweep --corun PR,PR --datasets lj,pl --schemes RRIP,GRASP \
        --schedule poisson --partition 8:8          # multi-programmed co-run
    repro sweep --resume 20260807-101501-ab12cd34   # finish an interrupted run
    repro plan explain --apps PR --datasets lj --schemes RRIP,GRASP \
        --preset smoke                              # which route would run, and why
    repro runs                                      # list known runs
    repro graph info lj "rmat:scale=12,seed=7"      # describe graph specs
    repro graph ingest crawl.txt.gz                 # build the binary-CSR cache
    repro graph fetch web-google --dest data/       # checksum-verified download

``sweep`` decomposes the comparison into the content-addressed task DAG of
:mod:`repro.experiments.service`, runs it on a worker pool with retry,
work stealing and heartbeat supervision, prints per-task progress and a
terminal summary, and leaves a JSON run manifest under
``<cache-dir>/runs/<run-id>/manifest.json``.  Because results live in the
shared on-disk memo store, re-running (or ``--resume``-ing) only executes
tasks whose entries are missing, and concurrent clients deduplicate work.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.partition import WayPartition
from repro.experiments.config import ExperimentConfig
from repro.experiments.memo import DiskMemo, default_cache_dir
from repro.experiments.queue import RetryPolicy
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    CorunSpec,
    DataPoint,
    compare_policies_corun,
    plan_corun_task,
    plan_scheme_task,
    set_disk_memo,
)
from repro.experiments.schemes import (
    ABLATION_SCHEMES,
    HISTORY_SCHEMES,
    PINNING_SCHEMES,
    POLICY_SPECS,
    ROBUSTNESS_SCHEMES,
)
from repro.experiments.service import (
    SweepError,
    SweepResult,
    SweepSpec,
    TaskRecord,
    load_manifest,
    resume_sweep,
    run_sweep,
    runs_root,
)
from repro.trace.interleave import SCHEDULES

#: Fallback cache root when neither --cache-dir nor REPRO_CACHE_DIR is set.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Figure presets: (schemes, dataset group).  Apps always come from the config.
FIGURE_PRESETS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "fig5": (HISTORY_SCHEMES, "high_skew"),
    "fig6": (HISTORY_SCHEMES, "high_skew"),
    "fig7": (ABLATION_SCHEMES, "high_skew"),
    "fig8": (PINNING_SCHEMES, "high_skew"),
    "fig9": (ROBUSTNESS_SCHEMES, "adversarial"),
}

CONFIG_PRESETS = {
    "default": ExperimentConfig.default,
    "benchmark": ExperimentConfig.benchmark,
    "smoke": ExperimentConfig.smoke,
}


def _csv(value: str) -> Tuple[str, ...]:
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    """Arguments describing *what* to simulate — shared by ``sweep`` (which
    runs the tasks) and ``plan explain`` (which only plans them)."""
    parser.add_argument("--apps", type=_csv, default=None, help="comma-separated app names")
    parser.add_argument("--datasets", type=_csv, default=None, help="comma-separated dataset names")
    parser.add_argument(
        "--graph", action="append", default=None, metavar="SPEC",
        help="add one repro.graph.load spec as a dataset (repeatable; commas "
             'stay inside the spec, e.g. --graph "rmat:scale=18,seed=7" or '
             '--graph file:web-Google.txt.gz)',
    )
    parser.add_argument(
        "--graph-cache", default=None, metavar="DIR",
        help="binary-CSR cache root for file-backed graph specs "
             "(default: REPRO_GRAPH_CACHE or .repro-cache/graphs)",
    )
    parser.add_argument(
        "--schemes", type=_csv, default=None,
        help=f"comma-separated schemes (known: {', '.join(POLICY_SPECS)})",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURE_PRESETS), default=None,
        help="sweep a whole paper figure (schemes + dataset group)",
    )
    parser.add_argument(
        "--preset", choices=sorted(CONFIG_PRESETS), default="default",
        help="experiment scale preset (default: full scale)",
    )
    parser.add_argument("--scale", type=float, default=None, help="override dataset scale")
    parser.add_argument("--seed", type=int, default=None, help="override generation seed")
    parser.add_argument("--reorder", default=None, help="software reordering (default: config)")
    parser.add_argument("--baseline", default="RRIP", help="baseline scheme (default: RRIP)")
    parser.add_argument(
        "--corun", type=_csv, default=None, metavar="APPS",
        help="co-run these apps on one shared LLC (comma-separated; pairs with "
             "--datasets: one dataset broadcast to all apps, or one per app)",
    )
    parser.add_argument(
        "--schedule", choices=SCHEDULES, default="round_robin",
        help="co-run interleaving schedule (default: round_robin)",
    )
    parser.add_argument(
        "--quantum", type=int, default=64,
        help="co-run schedule quantum in accesses (default: 64)",
    )
    parser.add_argument(
        "--partition", default=None, metavar="W1:W2[:...]",
        help="static way-partition shares per co-runner, e.g. 8:8 "
             "(default: unpartitioned shared LLC)",
    )
    parser.add_argument(
        "--corun-seed", type=int, default=0,
        help="seed of the poisson co-run schedule (default: 0)",
    )
    parser.add_argument(
        "--streaming", action="store_true",
        help="sweep full executions through the streaming pipeline",
    )
    parser.add_argument(
        "--chunk-accesses", type=int, default=None,
        help="chunk budget of the streaming pipeline",
    )
    parser.add_argument(
        "--sim-backend", choices=("vector", "scalar", "verify"), default=None,
        help="simulation backend (results are identical; default: vector)",
    )
    parser.add_argument("--cache-dir", default=None, help="content-addressed store root")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRASP-reproduction experiment sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep",
        help="run (or resume) a policy-comparison sweep on the task service",
        description="Run a compare_policies sweep as a fault-tolerant task DAG.",
    )
    _add_spec_args(sweep)
    sweep.add_argument("--workers", type=int, default=None, help="worker count (default: REPRO_WORKERS or CPUs)")
    sweep.add_argument(
        "--worker-backend", choices=("process", "inline"), default="process",
        help="task transport (default: process pool)",
    )
    sweep.add_argument("--run-id", default=None, help="explicit run id")
    sweep.add_argument("--resume", metavar="RUN_ID", default=None, help="resume a recorded run")
    sweep.add_argument("--max-attempts", type=int, default=4, help="executions per task before failing")
    sweep.add_argument(
        "--heartbeat-timeout", type=float, default=300.0,
        help="seconds without a worker heartbeat before a task is re-dispatched",
    )
    sweep.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")
    sweep.set_defaults(func=cmd_sweep)

    runs = sub.add_parser("runs", help="list recorded sweep runs")
    runs.add_argument("--cache-dir", default=None)
    runs.set_defaults(func=cmd_runs)

    plan = sub.add_parser(
        "plan",
        help="inspect execution plans without running anything",
        description="Capability-driven execution planning (repro.fastsim.plan).",
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    explain = plan_sub.add_parser(
        "explain",
        help="print the planned route for every task of a sweep spec, and why",
        description="For each (app, dataset, scheme) task of the spec, print "
                    "the ExecutionPlan the runner would follow — route, engine, "
                    "kernel tier, backend and every fallback reason — without "
                    "building workloads or running simulations.  Cache-state "
                    "probes (memoized traces/chunk stores) consult the same "
                    "memo store a sweep would use.",
    )
    _add_spec_args(explain)
    explain.add_argument(
        "--json", action="store_true",
        help="emit one JSON object mapping task keys to serialized plans",
    )
    explain.set_defaults(func=cmd_plan_explain)

    graph = sub.add_parser(
        "graph",
        help="graph acquisition tools (specs, ingestion cache, datasets)",
        description="Inspect graph specs, manage the binary-CSR cache and "
                    "download/verify real-world datasets.",
    )
    graph_sub = graph.add_subparsers(dest="graph_command", required=True)

    info = graph_sub.add_parser("info", help="describe specs and their skew profiles")
    info.add_argument("specs", nargs="+", metavar="SPEC")
    info.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    info.add_argument("--seed", type=int, default=42, help="generation seed")
    info.add_argument("--graph-cache", default=None, help="binary-CSR cache root")
    info.add_argument(
        "--no-load", action="store_true",
        help="only resolve the specs; skip loading and profiling the graphs",
    )
    info.set_defaults(func=cmd_graph_info)

    ingest = graph_sub.add_parser(
        "ingest", help="parse graph files into the binary-CSR cache (out-of-core)"
    )
    ingest.add_argument("files", nargs="+", metavar="FILE")
    ingest.add_argument("--format", choices=("edgelist", "snap", "mtx"), default=None)
    ingest.add_argument("--graph-cache", default=None, help="binary-CSR cache root")
    ingest.set_defaults(func=cmd_graph_ingest)

    fetch = graph_sub.add_parser(
        "fetch", help="download a known dataset (or URL) with checksum verification"
    )
    fetch.add_argument("names", nargs="*", metavar="NAME_OR_URL")
    fetch.add_argument("--dest", default="data", help="download directory (default: data/)")
    fetch.add_argument("--sha256", default=None, help="expected digest (single download)")
    fetch.add_argument("--force", action="store_true", help="re-download even if present")
    fetch.add_argument("--list", action="store_true", help="list known datasets and exit")
    fetch.set_defaults(func=cmd_graph_fetch)

    verify = graph_sub.add_parser(
        "verify", help="verify downloaded files against the CHECKSUMS.sha256 lockfile"
    )
    verify.add_argument("--dest", default="data", help="directory holding the lockfile")
    verify.set_defaults(func=cmd_graph_verify)
    return parser


def _resolve_cache_dir(value: Optional[str]) -> Path:
    if value:
        return Path(value)
    env = default_cache_dir()
    return env if env is not None else Path(DEFAULT_CACHE_DIR)


def _spec_from_args(args: argparse.Namespace, config: ExperimentConfig) -> SweepSpec:
    apps = args.apps
    datasets = tuple(args.datasets or ()) + tuple(args.graph or ()) or None
    schemes = args.schemes
    if args.figure is not None:
        figure_schemes, group = FIGURE_PRESETS[args.figure]
        schemes = schemes or figure_schemes
        datasets = datasets or tuple(
            config.adversarial_datasets if group == "adversarial" else config.high_skew_datasets
        )
        apps = apps or tuple(config.apps)
    if not (apps and datasets and schemes):
        raise SystemExit(
            "repro sweep: need --apps/--datasets (or --graph)/--schemes "
            "(or --figure to fill them in)"
        )
    return SweepSpec(
        apps=tuple(apps),
        datasets=tuple(datasets),
        schemes=tuple(schemes),
        reorder=args.reorder,
        baseline=args.baseline,
        streaming=args.streaming,
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = CONFIG_PRESETS[args.preset]()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.sim_backend is not None:
        overrides["backend"] = args.sim_backend
    if args.chunk_accesses is not None:
        overrides["chunk_accesses"] = args.chunk_accesses
    if getattr(args, "graph_cache", None) is not None:
        overrides["graph_cache_dir"] = args.graph_cache
    return config.with_overrides(**overrides) if overrides else config


class _Progress:
    """Per-task progress lines and a live completion counter."""

    def __init__(self, quiet: bool, out) -> None:
        self.quiet = quiet
        self.out = out
        self.total = 0
        self.finished = 0

    def __call__(self, phase: str, record: TaskRecord) -> None:
        if phase in ("done", "cached", "failed"):
            self.finished += 1
        if self.quiet:
            return
        width = len(str(self.total))
        prefix = f"[{min(self.finished, self.total):>{width}}/{self.total}]"
        label = record.task.label or record.task.task_id[:12]
        if phase == "dispatch":
            if record.attempts > 1:
                print(f"{prefix} retry    {label} (attempt {record.attempts})", file=self.out)
        elif phase == "done":
            print(f"{prefix} done     {label} (worker {record.worker})", file=self.out)
        elif phase == "cached":
            print(f"{prefix} cached   {label}", file=self.out)
        elif phase == "retry":
            print(f"{prefix} fault    {label}: {record.error}", file=self.out)
        elif phase == "failed":
            print(f"{prefix} FAILED   {label}: {record.error}", file=self.out)


def _points_rows(points: Sequence[DataPoint]) -> List[Dict[str, object]]:
    return [
        {
            "app": point.app_name,
            "dataset": point.dataset_name,
            "scheme": point.scheme,
            "misses": point.stats.misses,
            "miss_red_%": point.miss_reduction_pct,
            "speedup_%": point.speedup_pct,
        }
        for point in points
    ]


def _print_summary(result: SweepResult, out) -> None:
    report = result.report
    print(
        f"\nrun {result.run_id}: {report.executed} executed, {report.cached} cached, "
        f"{report.retries} retries ({report.worker_deaths} worker deaths, "
        f"{report.task_errors} task errors, {report.heartbeat_timeouts} heartbeat timeouts), "
        f"{report.steals} steals",
        file=out,
    )
    print(f"manifest: {result.manifest}", file=out)
    print(file=out)
    print(format_table(_points_rows(result.points), title="DataPoints"), file=out)


def _corun_spec_from_args(args: argparse.Namespace) -> CorunSpec:
    apps = tuple(args.corun)
    datasets = tuple(args.datasets or ()) + tuple(args.graph or ())
    if not datasets or not args.schemes:
        raise SystemExit("repro sweep --corun: need --datasets (or --graph) and --schemes")
    if len(datasets) == 1:
        datasets = datasets * len(apps)
    if len(datasets) != len(apps):
        raise SystemExit(
            f"repro sweep --corun: {len(apps)} app(s) but {len(datasets)} dataset(s) "
            "(give one dataset to broadcast, or exactly one per app)"
        )
    partition = WayPartition.parse(args.partition) if args.partition else None
    if partition is not None and partition.num_streams != len(apps):
        raise SystemExit(
            f"repro sweep --corun: partition {partition} names "
            f"{partition.num_streams} share(s) for {len(apps)} app(s)"
        )
    return CorunSpec(
        pairs=tuple(zip(apps, datasets)),
        schedule=args.schedule,
        quantum=args.quantum,
        seed=args.corun_seed,
        partition=partition,
    )


def _cmd_corun(args: argparse.Namespace, cache_dir: Path) -> int:
    """Serial co-run comparison: one shared LLC, per-stream DataPoints."""
    config = _config_from_args(args)
    spec = _corun_spec_from_args(args)
    set_disk_memo(DiskMemo(cache_dir))
    workloads = " + ".join(f"{app}/{dataset}" for app, dataset in spec.pairs)
    partition = f"partition {spec.partition}" if spec.partition else "shared (no partition)"
    print(
        f"corun: {workloads} [{spec.schedule}, quantum {spec.quantum}, {partition}] "
        f"x {len(args.schemes)} scheme(s)"
    )
    points = compare_policies_corun(
        spec,
        args.schemes,
        config=config,
        reorder=args.reorder,
        baseline=args.baseline,
    )
    print(format_table(_points_rows(points), title="DataPoints"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    if args.corun:
        return _cmd_corun(args, cache_dir)
    progress = _Progress(args.quiet, sys.stdout)
    retry = RetryPolicy(max_attempts=args.max_attempts)
    try:
        if args.resume:
            try:
                stored = load_manifest(cache_dir, args.resume)
            except FileNotFoundError:
                print(f"error: no run {args.resume!r} under {runs_root(cache_dir)}",
                      file=sys.stderr)
                return 1
            progress.total = len(stored.get("tasks", []))
            print(f"resume {args.resume}: {progress.total} tasks ({args.worker_backend} backend)")
            result = resume_sweep(
                args.resume,
                cache_dir=cache_dir,
                workers=args.workers,
                worker_backend=args.worker_backend,
                retry=retry,
                heartbeat_timeout=args.heartbeat_timeout,
                on_event=progress,
            )
        else:
            config = _config_from_args(args)
            spec = _spec_from_args(args, config)
            pairs = len(spec.apps) * len(spec.datasets)
            progress.total = pairs * (2 + len(spec.all_schemes()))
            print(
                f"sweep: {len(spec.apps)} app(s) x {len(spec.datasets)} dataset(s) x "
                f"{len(spec.schemes)} scheme(s) -> {progress.total} tasks "
                f"({args.worker_backend} backend)",
            )
            result = run_sweep(
                spec,
                config=config,
                cache_dir=cache_dir,
                workers=args.workers,
                worker_backend=args.worker_backend,
                run_id=args.run_id,
                retry=retry,
                heartbeat_timeout=args.heartbeat_timeout,
                on_event=progress,
            )
    except SweepError as error:
        print(f"\nerror: {error}", file=sys.stderr)
        for task_id in error.failed:
            print(f"  failed task: {task_id}", file=sys.stderr)
        return 1
    _print_summary(result, sys.stdout)
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    root = runs_root(cache_dir)
    rows = []
    if root.is_dir():
        for run_dir in sorted(root.iterdir()):
            try:
                manifest = load_manifest(cache_dir, run_dir.name)
            except (OSError, json.JSONDecodeError, FileNotFoundError):
                continue
            spec = manifest.get("spec", {})
            rows.append(
                {
                    "run_id": manifest.get("run_id", run_dir.name),
                    "status": manifest.get("status", "?"),
                    "updated": manifest.get("updated_at", "?"),
                    "tasks": len(manifest.get("tasks", [])),
                    "sweep": f"{len(spec.get('apps', []))}x{len(spec.get('datasets', []))}"
                             f"x{len(spec.get('schemes', []))}",
                }
            )
    print(format_table(rows, title=f"runs under {root}"))
    return 0


def cmd_plan_explain(args: argparse.Namespace) -> int:
    """Print the ExecutionPlan for every task of the spec without running it."""
    config = _config_from_args(args)
    set_disk_memo(DiskMemo(_resolve_cache_dir(args.cache_dir)))
    plans: Dict[str, object] = {}
    status = 0
    if args.corun:
        spec = _corun_spec_from_args(args)
        label = "+".join(f"{app}/{dataset}" for app, dataset in spec.pairs)
        for scheme in args.schemes:
            try:
                plans[f"corun:{label}/{scheme}"] = plan_corun_task(spec, scheme, config)
            except ValueError as error:
                print(f"error: corun {scheme}: {error}", file=sys.stderr)
                status = 1
    else:
        spec = _spec_from_args(args, config)
        reorder = spec.resolved_reorder(config)
        for dataset in spec.datasets:
            for app in spec.apps:
                for scheme in spec.all_schemes():
                    plans[f"{app}/{dataset}/{scheme}"] = plan_scheme_task(
                        app, dataset, reorder, scheme, config,
                        streaming=spec.streaming,
                    )
    if args.json:
        print(json.dumps({key: plan.to_json() for key, plan in plans.items()},
                         indent=2, sort_keys=True))
        return status
    for key, plan in plans.items():
        print(f"== {key} ==")
        for line in plan.explain().splitlines():
            print(f"  {line}")
    return status


def cmd_graph_info(args: argparse.Namespace) -> int:
    from repro.graph.csr import GraphError
    from repro.graph.properties import skew_report
    from repro.graph.source import describe_spec, load

    rows: List[Dict[str, object]] = []
    status = 0
    for spec in args.specs:
        try:
            info = describe_spec(spec)
        except GraphError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 1
            continue
        row: Dict[str, object] = {
            "spec": info["spec"],
            "head": info["head"],
            "canonical": info.get("canonical", info.get("canonical_error", "?")),
        }
        if not args.no_load:
            try:
                graph = load(
                    spec, scale=args.scale, seed=args.seed,
                    cache_root=args.graph_cache,
                )
            except GraphError as error:
                print(f"error loading {spec!r}: {error}", file=sys.stderr)
                status = 1
                rows.append(row)
                continue
            report = skew_report(graph, extended=True).as_dict()
            report.pop("dataset", None)
            row["mmap"] = graph.is_mmap
            row.update(report)
        rows.append(row)
    if rows:
        print(format_table(rows, title="graph specs"))
    return status


def cmd_graph_ingest(args: argparse.Namespace) -> int:
    from repro.graph.csr import GraphError
    from repro.graph.ingest import ingest_graph

    status = 0
    for filename in args.files:
        try:
            graph = ingest_graph(
                filename, fmt=args.format, mmap=True, cache_root=args.graph_cache,
            )
        except GraphError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 1
            continue
        print(
            f"{filename}: {graph.num_vertices} vertices, {graph.num_edges} edges"
            f"{' (weighted)' if graph.is_weighted else ''} -> {graph.backing_dir}"
        )
    return status


def cmd_graph_fetch(args: argparse.Namespace) -> int:
    from repro.graph.csr import GraphError
    from repro.graph.ingest import KNOWN_DATASETS, fetch_dataset

    if args.list or not args.names:
        rows = [
            {"name": d.name, "description": d.description, "url": d.url}
            for d in KNOWN_DATASETS.values()
        ]
        print(format_table(rows, title="known datasets"))
        return 0
    if args.sha256 and len(args.names) > 1:
        print("error: --sha256 applies to a single download", file=sys.stderr)
        return 1
    status = 0
    for name in args.names:
        try:
            dest = fetch_dataset(
                name, args.dest, sha256=args.sha256, force=args.force,
            )
        except GraphError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 1
            continue
        print(f"{name}: {dest}")
    return status


def cmd_graph_verify(args: argparse.Namespace) -> int:
    from repro.graph.csr import GraphError
    from repro.graph.ingest import load_checksums, verify_file

    directory = Path(args.dest)
    checksums = load_checksums(directory)
    if not checksums:
        print(f"error: no checksum lockfile under {directory}", file=sys.stderr)
        return 1
    status = 0
    for filename, digest in sorted(checksums.items()):
        target = directory / filename
        if not target.exists():
            print(f"MISSING  {filename}")
            status = 1
            continue
        try:
            verify_file(target, digest)
        except GraphError as error:
            print(f"FAILED   {filename}: {error}")
            status = 1
            continue
        print(f"ok       {filename}")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
