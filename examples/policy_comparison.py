#!/usr/bin/env python
"""Compare every LLC management scheme the paper evaluates on one workload.

Mirrors Figs. 5/6/8 for a single (application, dataset) pair: the
domain-agnostic history-based schemes (SHiP-MEM, Hawkeye, Leeway), the
XMem-style pinning configurations, GRASP's ablation variants and full GRASP,
plus Belady's OPT as the offline upper bound.

Run with:  python examples/policy_comparison.py [app] [dataset]
"""

import sys

from repro.experiments import ExperimentConfig, build_workload
from repro.experiments.reporting import format_table
from repro.experiments.runner import llc_trace_for, simulate_llc_policy, simulate_opt, workload_cycles
from repro.experiments.schemes import POLICY_SPECS, scheme_policy


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "PR"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "pl"
    config = ExperimentConfig.default().with_overrides(scale=0.5)

    print(f"Workload: {app} on {dataset} (DBG-reordered), scaled LLC = "
          f"{config.hierarchy.llc.size_bytes // 1024} KiB")
    workload = build_workload(app, dataset, reorder="dbg", config=config)
    llc_trace = llc_trace_for(workload, config)

    baseline_stats = simulate_llc_policy(llc_trace, scheme_policy("RRIP"), config.hierarchy.llc)
    baseline_cycles = workload_cycles(workload, baseline_stats, config)

    rows = []
    for scheme in POLICY_SPECS:
        stats = simulate_llc_policy(llc_trace, scheme_policy(scheme), config.hierarchy.llc)
        cycles = workload_cycles(workload, stats, config)
        rows.append(
            {
                "scheme": scheme,
                "misses": stats.misses,
                "miss_rate": round(stats.miss_rate, 3),
                "miss_reduction_vs_RRIP_pct": round((1 - stats.misses / baseline_stats.misses) * 100, 2),
                "speedup_vs_RRIP_pct": round((baseline_cycles / cycles - 1) * 100, 2),
            }
        )
    opt = simulate_opt(llc_trace, config.hierarchy.llc)
    rows.append(
        {
            "scheme": "OPT (offline bound)",
            "misses": opt.misses,
            "miss_rate": round(opt.miss_rate, 3),
            "miss_reduction_vs_RRIP_pct": round((1 - opt.misses / baseline_stats.misses) * 100, 2),
            "speedup_vs_RRIP_pct": "-",
        }
    )
    print(format_table(rows))


if __name__ == "__main__":
    main()
