#!/usr/bin/env python
"""Replay a *full* multi-iteration execution with bounded memory.

The ROI pipeline (`examples/policy_comparison.py`) traces the busiest
iteration only; this example streams every iteration of the application run
— warmup, push/pull direction switches, frontier evolution — through the
resumable fast-path engines, chunk by chunk, so peak memory stays bounded by
the chunk budget no matter how long the execution is.  Results are
bit-identical to materializing the whole trace, for every chunk budget.

Run with:  python examples/streaming_execution.py [app] [dataset]
"""

import sys

from repro.experiments import ExperimentConfig, build_workload
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    execution_cycles,
    execution_stream_summary,
    simulate_llc_policy_streaming,
    simulate_opt_streaming,
)
from repro.experiments.schemes import scheme_policy

SCHEMES = ("LRU", "RRIP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-100", "GRASP")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "PR"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "pl"
    # A small chunk budget to make the streaming visible; production runs use
    # the default (~1M accesses per chunk) or config.chunk_accesses.
    config = ExperimentConfig.default().with_overrides(scale=0.5, chunk_accesses=1 << 16)

    workload = build_workload(app, dataset, reorder="dbg", config=config)
    iterations = workload.app_result.iterations
    directions = "".join(record.direction[0] for record in iterations)
    print(f"Workload: {app} on {dataset} (DBG-reordered), "
          f"{len(iterations)} iterations [{directions}], "
          f"chunk budget = {config.chunk_accesses} accesses")

    summary = execution_stream_summary(workload, config)
    print(f"Full execution: {summary['total_references']} references, "
          f"{summary['l1_hits']} L1 hits / {summary['l2_hits']} L2 hits "
          f"filtered before the LLC, streamed in {summary['chunks']} chunks\n")

    baseline = simulate_llc_policy_streaming(workload, scheme_policy("RRIP"), config)
    baseline_cycles = execution_cycles(workload, baseline, config)

    rows = []
    for scheme in SCHEMES:
        stats = (
            baseline
            if scheme == "RRIP"
            else simulate_llc_policy_streaming(workload, scheme_policy(scheme), config)
        )
        cycles = execution_cycles(workload, stats, config)
        rows.append(
            {
                "scheme": scheme,
                "misses": stats.misses,
                "miss_rate": round(stats.miss_rate, 3),
                "miss_reduction_vs_RRIP_pct": round(
                    (1 - stats.misses / baseline.misses) * 100, 2
                ),
                "speedup_vs_RRIP_pct": round((baseline_cycles / cycles - 1) * 100, 2),
            }
        )
    opt = simulate_opt_streaming(workload, config)
    rows.append(
        {
            "scheme": "OPT (offline bound)",
            "misses": opt.misses,
            "miss_rate": round(opt.miss_rate, 3),
            "miss_reduction_vs_RRIP_pct": round(
                (1 - opt.misses / baseline.misses) * 100, 2
            ),
            "speedup_vs_RRIP_pct": "-",
        }
    )
    print(format_table(rows))


if __name__ == "__main__":
    main()
