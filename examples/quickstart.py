#!/usr/bin/env python
"""Quickstart: GRASP vs the RRIP baseline on one graph-analytics workload.

This walks the full pipeline of the paper on a single (application, dataset)
pair:

1. generate a scaled-down Twitter-like power-law graph;
2. apply DBG skew-aware reordering so hot vertices occupy a contiguous prefix;
3. run PageRank and pick the region-of-interest iteration;
4. lay the graph's arrays out in memory, register the Property Array bounds
   in GRASP's Address Bound Registers and generate the LLC access trace;
5. replay the trace under RRIP and under GRASP and compare misses/speed-up.

Run with:  python examples/quickstart.py
"""

from repro.experiments import ExperimentConfig, build_workload
from repro.experiments.runner import llc_trace_for, simulate_llc_policy, workload_cycles
from repro.experiments.schemes import scheme_policy


def main() -> None:
    config = ExperimentConfig.default().with_overrides(scale=0.5)

    print("Building workload: PageRank on the Twitter-like 'tw' dataset, DBG-reordered ...")
    workload = build_workload("PR", "tw", reorder="dbg", config=config)
    graph = workload.graph
    print(f"  graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"  ROI: iteration {workload.roi.index} ({workload.dominant_direction}), "
          f"{workload.roi.active_vertices} active vertices")
    bounds = workload.layout.property_array_bounds()
    print(f"  Address Bound Registers: {[(hex(s), hex(e)) for s, e in bounds]}")

    llc_trace = llc_trace_for(workload, config)
    print(f"  LLC accesses after L1/L2 filtering: {len(llc_trace)} "
          f"(of {llc_trace.total_references} total references)")

    results = {}
    for scheme in ("RRIP", "GRASP"):
        stats = simulate_llc_policy(llc_trace, scheme_policy(scheme), config.hierarchy.llc)
        cycles = workload_cycles(workload, stats, config)
        results[scheme] = (stats, cycles)
        print(f"  {scheme:6s}: {stats.misses:7d} misses "
              f"(miss rate {stats.miss_rate:.3f}), {cycles:,.0f} model cycles")

    rrip_stats, rrip_cycles = results["RRIP"]
    grasp_stats, grasp_cycles = results["GRASP"]
    miss_reduction = (1 - grasp_stats.misses / rrip_stats.misses) * 100
    speedup = (rrip_cycles / grasp_cycles - 1) * 100
    print()
    print(f"GRASP eliminates {miss_reduction:.1f}% of RRIP's LLC misses "
          f"and speeds the ROI up by {speedup:.1f}%.")


if __name__ == "__main__":
    main()
