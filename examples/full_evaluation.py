#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Produces a Markdown report (printed to stdout, optionally written to a file)
containing the reproduction's numbers for Tables I, IV and VII and Figs. 2,
5, 6, 7, 8, 9, 10a, 10b and 11.  EXPERIMENTS.md is produced by this script.

Usage:
    python examples/full_evaluation.py [--scale S] [--output FILE] [--quick]
                                       [--workers N] [--cache-dir DIR]

``--quick`` trims the workload matrix (three datasets, three applications)
so the whole report finishes in a few minutes; the default runs the full
5-application x 5-dataset matrix of the paper.  ``--workers`` prewarms the
figure drivers by sharding the main policy comparison across processes, and
``--cache-dir`` persists workloads/traces/results on disk so repeated runs
(and the individual benchmarks) reuse them.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentConfig
from repro.experiments.figures import (
    fig2_llc_breakdown,
    fig5_miss_reduction,
    fig7_ablation,
    fig8_pinning,
    fig9_low_skew,
    fig10a_reordering_speedup,
    fig10b_grasp_over_reorderings,
    fig11_vs_opt,
    summarize_fig11,
)
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import average_miss_reduction, geometric_mean_speedup
from repro.experiments.tables import table1_skew, table4_merging, table7_llc_sweep


def section(lines, title):
    lines.append(f"\n## {title}\n")


def code_block(lines, text):
    lines.append("```")
    lines.append(text)
    lines.append("```")


def scheme_summary(points, metric, aggregate):
    schemes = sorted({p.scheme for p in points})
    return {scheme: round(aggregate([p for p in points if p.scheme == scheme]), 2) for scheme in schemes}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--output", type=str, default=None, help="write the report to this file")
    parser.add_argument("--quick", action="store_true", help="use a reduced workload matrix")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="prewarm the policy comparison across N processes (default: serial)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="persist workloads/traces/results under this directory",
    )
    args = parser.parse_args()

    config = ExperimentConfig.default().with_overrides(scale=args.scale)
    if args.quick:
        config = config.with_overrides(
            apps=("PR", "SSSP", "Radii"),
            high_skew_datasets=("lj", "pl", "kr"),
        )
    reorder_config = config.with_overrides(
        apps=config.apps[: 3 if not args.quick else 2],
        high_skew_datasets=config.high_skew_datasets[: 3 if not args.quick else 2],
    )

    if args.cache_dir or (args.workers or 0) > 1:
        # Shard the heaviest comparison (Figs. 5/6) across processes and/or a
        # persistent cache; the figure drivers below then reuse every
        # workload, filtered trace and policy run from the memo.  Worker
        # results only reach this process through the disk memo, so a
        # parallel prewarm without --cache-dir still needs a (throwaway)
        # store for the drivers to read.
        import atexit
        import shutil
        import tempfile

        from repro.experiments import compare_policies_parallel
        from repro.experiments.schemes import HISTORY_SCHEMES

        cache_dir = args.cache_dir
        if cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="grasp-memo-")
            atexit.register(shutil.rmtree, cache_dir, ignore_errors=True)
        compare_policies_parallel(
            config.apps,
            config.high_skew_datasets,
            list(HISTORY_SCHEMES),
            config=config,
            max_workers=args.workers or 1,
            cache_dir=cache_dir,
        )

    started = time.time()
    lines: list[str] = []
    lines.append("# Reproduction results")
    lines.append("")
    lines.append(
        f"Configuration: scale={config.scale}, LLC={config.hierarchy.llc.size_bytes // 1024} KiB "
        f"({config.hierarchy.llc.ways}-way), apps={list(config.apps)}, "
        f"high-skew datasets={list(config.high_skew_datasets)}, reordering={config.reorder}."
    )

    section(lines, "Table I — dataset skew")
    code_block(lines, format_table(table1_skew(config)))

    section(lines, "Fig. 2 — LLC access/miss breakdown (original ordering, RRIP)")
    code_block(lines, format_table(fig2_llc_breakdown(config, datasets=("pl", "tw") if not args.quick else ("pl",))))

    section(lines, "Table IV — Property-Array merging speed-up (identity ordering, RRIP)")
    code_block(lines, format_table(table4_merging(config)))

    section(lines, "Figs. 5 & 6 — prior schemes vs GRASP over RRIP (DBG reordering)")
    points = fig5_miss_reduction(config)
    code_block(lines, format_table(pivot_by_scheme(points, "miss_reduction_pct"), title="Miss reduction (%)"))
    code_block(lines, format_table(pivot_by_scheme(points, "speedup_pct"), title="Speed-up (%)"))
    lines.append(f"Average miss reduction: {scheme_summary(points, 'miss', average_miss_reduction)}")
    lines.append(f"Geometric-mean speed-up: {scheme_summary(points, 'speedup', geometric_mean_speedup)}")

    section(lines, "Fig. 7 — GRASP feature ablation (speed-up % over RRIP)")
    ablation = fig7_ablation(config)
    code_block(lines, format_table(pivot_by_scheme(ablation, "speedup_pct")))
    lines.append(f"Geometric-mean speed-up: {scheme_summary(ablation, 'speedup', geometric_mean_speedup)}")

    section(lines, "Fig. 8 — pinning vs GRASP on high-skew datasets (speed-up % over RRIP)")
    pinning = fig8_pinning(config)
    code_block(lines, format_table(pivot_by_scheme(pinning, "speedup_pct")))
    lines.append(f"Geometric-mean speed-up: {scheme_summary(pinning, 'speedup', geometric_mean_speedup)}")

    section(lines, "Fig. 9 — robustness on low-/no-skew datasets (speed-up % over RRIP)")
    robustness = fig9_low_skew(config)
    code_block(lines, format_table(pivot_by_scheme(robustness, "speedup_pct")))
    lines.append(f"Geometric-mean speed-up: {scheme_summary(robustness, 'speedup', geometric_mean_speedup)}")

    section(lines, "Fig. 10a — net speed-up of reordering techniques (cost included, %)")
    code_block(lines, format_table(fig10a_reordering_speedup(reorder_config)))

    section(lines, "Fig. 10b — GRASP speed-up over RRIP on top of each reordering (%)")
    code_block(lines, format_table(fig10b_grasp_over_reorderings(reorder_config)))

    section(lines, "Fig. 11 — misses eliminated over LRU (%)")
    fig11 = fig11_vs_opt(config)
    code_block(lines, format_table(fig11))
    lines.append(f"Summary: {summarize_fig11(fig11)}")

    section(lines, "Table VII — misses eliminated over LRU vs LLC size (%)")
    code_block(lines, format_table(table7_llc_sweep(config)))

    lines.append("")
    lines.append(f"_Report generated in {time.time() - started:.0f} s._")

    report = "\n".join(lines)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
