#!/usr/bin/env python
"""Adversarial-dataset study: GRASP vs pinning on low-/no-skew graphs (Fig. 9).

On graphs without a power-law degree distribution the High Reuse Region no
longer dominates LLC accesses, so rigid pinning wastes capacity while GRASP's
flexible policies should avoid slowdowns.

Run with:  python examples/robustness_low_skew.py
"""

from repro.experiments import ExperimentConfig
from repro.experiments.figures import fig9_low_skew
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import geometric_mean_speedup


def main() -> None:
    config = ExperimentConfig.default().with_overrides(
        scale=0.5, apps=("PR", "PRD", "Radii")
    )
    points = fig9_low_skew(config)
    rows = pivot_by_scheme(points, "speedup_pct")
    print(format_table(rows, title="Speed-up over RRIP (%) on low-/no-skew datasets"))
    print()
    for scheme in ("PIN-75", "PIN-100", "GRASP"):
        scheme_points = [p for p in points if p.scheme == scheme]
        worst = min(p.speedup_pct for p in scheme_points)
        print(f"{scheme:8s}: geometric-mean speed-up "
              f"{geometric_mean_speedup(scheme_points):6.2f}%, worst datapoint {worst:6.2f}%")


if __name__ == "__main__":
    main()
