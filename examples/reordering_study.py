#!/usr/bin/env python
"""Software-only study: skew-aware vertex reordering as a standalone optimization.

Reproduces the flavour of Fig. 10a on one dataset: each reordering technique
is applied to the graph, the application is simulated on the reordered graph,
and the *net* speed-up (including the modelled reordering cost) is reported
relative to the original vertex order.  Skew-aware techniques (Sort, HubSort,
DBG) amortise their cost; Gorder does not.

Run with:  python examples/reordering_study.py [dataset]
"""

import sys

from repro.experiments import ExperimentConfig
from repro.experiments.figures import fig10a_reordering_speedup
from repro.experiments.reporting import format_table
from repro.graph import load, skew_report
from repro.reorder import get_technique


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "pl"
    config = ExperimentConfig.default().with_overrides(
        scale=0.4, apps=("PR", "PRD"), high_skew_datasets=(dataset,)
    )

    graph = load(dataset, scale=config.scale, seed=config.seed)
    report = skew_report(graph)
    print(f"Dataset {dataset}: {report.num_vertices} vertices, {report.num_edges} edges, "
          f"{report.out_hot_vertex_pct:.1f}% hot vertices covering "
          f"{report.out_edge_coverage_pct:.1f}% of edges\n")

    print("Reordering cost model (abstract operations per technique):")
    for name in ("sort", "hubsort", "dbg", "gorder"):
        technique = get_technique(name)
        print(f"  {name:8s}: {technique.estimated_operations(graph):,.0f} operations")
    print()

    rows = fig10a_reordering_speedup(config)
    print(format_table(rows, title="Net speed-up over original ordering (%) — reordering cost included"))


if __name__ == "__main__":
    main()
